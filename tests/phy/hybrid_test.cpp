#include "phy/hybrid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "antenna/steering.h"
#include "channel/models.h"
#include "linalg/eig.h"
#include "phy/capacity.h"
#include "randgen/rng.h"

namespace mmw::phy {
namespace {

using antenna::ArrayGeometry;
using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

/// Steering dictionary over the sector for the TX array.
std::vector<Vector> make_dictionary(const ArrayGeometry& geo, index_t n_az,
                                    index_t n_el) {
  std::vector<Vector> dict;
  for (index_t ia = 0; ia < n_az; ++ia) {
    const real az = -M_PI / 3 + 2 * M_PI / 3 * static_cast<real>(ia) /
                                    static_cast<real>(n_az - 1);
    for (index_t ie = 0; ie < n_el; ++ie) {
      const real el = -M_PI / 6 + M_PI / 3 * static_cast<real>(ie) /
                                      static_cast<real>(n_el - 1);
      dict.push_back(antenna::steering_vector(geo, {az, el}));
    }
  }
  return dict;
}

struct Fixture {
  ArrayGeometry tx = ArrayGeometry::upa(4, 4);
  ArrayGeometry rx = ArrayGeometry::upa(8, 8);
  std::vector<Vector> dict = make_dictionary(tx, 9, 5);
  Rng rng{5};

  Matrix sparse_channel(index_t paths) {
    std::vector<channel::Path> ps;
    for (index_t p = 0; p < paths; ++p)
      ps.push_back({1.0 / static_cast<real>(paths),
                    {rng.uniform(-1.0, 1.0), rng.uniform(-0.4, 0.4)},
                    {rng.uniform(-1.0, 1.0), rng.uniform(-0.4, 0.4)}});
    return channel::make_fixed_paths_link(tx, rx, std::move(ps))
        .draw_channel(rng);
  }
};

TEST(DigitalPrecoderTest, ColumnsAreTopRightSingularVectors) {
  Fixture f;
  const Matrix h = f.sparse_channel(3);
  const Matrix fd = optimal_digital_precoder(h, 2);
  EXPECT_EQ(fd.rows(), 16u);
  EXPECT_EQ(fd.cols(), 2u);
  const auto svd = linalg::svd(h);
  for (index_t s = 0; s < 2; ++s)
    EXPECT_NEAR(std::abs(linalg::dot(fd.col(s), svd.v.col(s))), 1.0, 1e-9);
}

TEST(HybridTest, InputValidation) {
  Fixture f;
  const Matrix h = f.sparse_channel(2);
  EXPECT_THROW(design_hybrid_precoder(h, 2, 1, f.dict), precondition_error);
  EXPECT_THROW(design_hybrid_precoder(h, 1, f.dict.size() + 1, f.dict),
               precondition_error);
  EXPECT_THROW(design_hybrid_precoder(h, 1, 1, {}), precondition_error);
  std::vector<Vector> bad{Vector(3)};
  EXPECT_THROW(design_hybrid_precoder(h, 1, 1, bad), precondition_error);
}

TEST(HybridTest, PowerNormalization) {
  Fixture f;
  const Matrix h = f.sparse_channel(3);
  for (const index_t n_rf : {index_t{2}, index_t{4}, index_t{6}}) {
    const auto res = design_hybrid_precoder(h, 2, n_rf, f.dict);
    EXPECT_NEAR((res.f_rf * res.f_bb).frobenius_norm(), std::sqrt(2.0),
                1e-9);
    EXPECT_EQ(res.f_rf.cols(), res.atom_indices.size());
    EXPECT_LE(res.atom_indices.size(), n_rf);
  }
}

TEST(HybridTest, ApproximationErrorDecreasesWithRfChains) {
  Fixture f;
  const Matrix h = f.sparse_channel(4);
  real prev = 1e9;
  for (const index_t n_rf : {index_t{1}, index_t{2}, index_t{4}, index_t{8}}) {
    const auto res = design_hybrid_precoder(h, 1, n_rf, f.dict);
    EXPECT_LE(res.approximation_error, prev + 1e-9);
    prev = res.approximation_error;
  }
}

TEST(HybridTest, NearDigitalOnSparseChannelWithFewChains) {
  // The headline result: on a 2-path channel, 4 RF chains ≈ fully digital.
  Fixture f;
  const Matrix h = f.sparse_channel(2);
  const index_t n_streams = 2;
  const Matrix fd = optimal_digital_precoder(h, n_streams);
  const auto hybrid = design_hybrid_precoder(h, n_streams, 4, f.dict);
  const real digital = precoded_spectral_efficiency(h, fd, 1.0);
  const real hyb = precoded_spectral_efficiency(
      h, hybrid.f_rf * hybrid.f_bb, 1.0);
  EXPECT_GT(hyb, 0.85 * digital);
}

TEST(HybridTest, MoreChainsNeverHurtSpectralEfficiency) {
  Fixture f;
  const Matrix h = f.sparse_channel(4);
  real prev = 0.0;
  for (const index_t n_rf : {index_t{2}, index_t{4}, index_t{8}}) {
    const auto res = design_hybrid_precoder(h, 2, n_rf, f.dict);
    const real se =
        precoded_spectral_efficiency(h, res.f_rf * res.f_bb, 1.0);
    EXPECT_GE(se, prev - 0.3);  // allow small OMP non-monotonicity
    prev = se;
  }
}

TEST(SpectralEfficiencyTest, SingleStreamMatchesBeamformingFormula) {
  Fixture f;
  const Matrix h = f.sparse_channel(1);
  // Rank-one precoder = unit-norm vector: log2(1 + P|Hf|²-quadratic form).
  const Vector v = f.rng.random_unit_vector(16);
  Matrix fmat(16, 1);
  fmat.set_col(0, v);
  const real se = precoded_spectral_efficiency(h, fmat, 2.0);
  const real expected = std::log2(1.0 + 2.0 * (h * v).squared_norm());
  EXPECT_NEAR(se, expected, 1e-9);
}

TEST(SpectralEfficiencyTest, Validation) {
  const Matrix h(4, 2);
  EXPECT_THROW(precoded_spectral_efficiency(h, Matrix(3, 1), 1.0),
               precondition_error);
  EXPECT_THROW(precoded_spectral_efficiency(h, Matrix(2, 1), 0.0),
               precondition_error);
}

}  // namespace
}  // namespace mmw::phy
