#include "phy/capacity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/models.h"
#include "linalg/eig.h"
#include "randgen/rng.h"

namespace mmw::phy {
namespace {

using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

Matrix diagonal_channel(std::initializer_list<real> gains) {
  Matrix h(gains.size(), gains.size());
  index_t i = 0;
  for (const real g : gains) {
    h(i, i) = cx{std::sqrt(g), 0.0};
    ++i;
  }
  return h;
}

TEST(AwgnTest, KnownValues) {
  EXPECT_DOUBLE_EQ(awgn_capacity_bps_hz(0.0), 0.0);
  EXPECT_DOUBLE_EQ(awgn_capacity_bps_hz(1.0), 1.0);
  EXPECT_DOUBLE_EQ(awgn_capacity_bps_hz(3.0), 2.0);
  EXPECT_THROW(awgn_capacity_bps_hz(-0.5), precondition_error);
}

TEST(WaterfillingTest, SingleModeGetsAllPower) {
  const Matrix h = diagonal_channel({4.0});
  const auto r = waterfilling_capacity(h, 2.0);
  ASSERT_EQ(r.mode_powers.size(), 1u);
  EXPECT_NEAR(r.mode_powers[0], 2.0, 1e-12);
  EXPECT_NEAR(r.capacity_bps_hz, std::log2(1.0 + 8.0), 1e-12);
}

TEST(WaterfillingTest, PowerConservation) {
  Rng rng(1);
  const Matrix h = rng.complex_gaussian_matrix(4, 6);
  const auto r = waterfilling_capacity(h, 3.0);
  real total = 0.0;
  for (const real p : r.mode_powers) {
    EXPECT_GE(p, -1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 3.0, 1e-9);
}

TEST(WaterfillingTest, WeakModeShutOffAtLowPower) {
  // Gains 10 and 0.1: at tiny total power only the strong mode is active.
  const Matrix h = diagonal_channel({10.0, 0.1});
  const auto r = waterfilling_capacity(h, 0.01);
  EXPECT_GT(r.mode_powers[0], 0.0);
  EXPECT_DOUBLE_EQ(r.mode_powers[1], 0.0);
}

TEST(WaterfillingTest, EqualGainsSplitEvenly) {
  const Matrix h = diagonal_channel({2.0, 2.0, 2.0});
  const auto r = waterfilling_capacity(h, 3.0);
  for (const real p : r.mode_powers) EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(WaterfillingTest, BeatsEqualPowerAllocation) {
  Rng rng(2);
  for (int t = 0; t < 10; ++t) {
    const Matrix h = rng.complex_gaussian_matrix(4, 4);
    const real wf = waterfilling_capacity(h, 1.0).capacity_bps_hz;
    const real ep = equal_power_capacity(h, 1.0);
    EXPECT_GE(wf, ep - 1e-9);
  }
}

TEST(WaterfillingTest, Validation) {
  EXPECT_THROW(waterfilling_capacity(Matrix(), 1.0), precondition_error);
  EXPECT_THROW(waterfilling_capacity(Matrix::identity(2), 0.0),
               precondition_error);
  EXPECT_THROW(waterfilling_capacity(Matrix(3, 3), 1.0),
               precondition_error);  // zero channel
}

TEST(BeamformingCapacityTest, MatchesOptimalAtTopSingularVectors) {
  Rng rng(3);
  const Matrix h = rng.complex_gaussian_matrix(6, 4);
  const auto svd = linalg::svd(h);
  const Vector u = svd.v.col(0);
  const Vector v = svd.u.col(0);
  EXPECT_NEAR(beamforming_capacity(h, u, v, 2.0),
              optimal_beamforming_capacity(h, 2.0), 1e-9);
}

TEST(BeamformingCapacityTest, SuboptimalBeamsLoseCapacity) {
  Rng rng(4);
  const Matrix h = rng.complex_gaussian_matrix(6, 4);
  const real best = optimal_beamforming_capacity(h, 2.0);
  for (int t = 0; t < 10; ++t)
    EXPECT_LE(beamforming_capacity(h, rng.random_unit_vector(4),
                                   rng.random_unit_vector(6), 2.0),
              best + 1e-9);
}

TEST(BeamformingCapacityTest, BoundedByWaterfilling) {
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const Matrix h = rng.complex_gaussian_matrix(5, 5);
    EXPECT_LE(optimal_beamforming_capacity(h, 1.5),
              waterfilling_capacity(h, 1.5).capacity_bps_hz + 1e-9);
  }
}

TEST(BeamformingCapacityTest, NearCapacityOnRankOneChannel) {
  // On a single-path channel, one beam pair captures (essentially) the
  // full waterfilling capacity — the reason analog beamforming suffices
  // for sparse mmWave channels.
  Rng rng(6);
  const auto tx = antenna::ArrayGeometry::upa(4, 4);
  const auto rx = antenna::ArrayGeometry::upa(4, 4);
  const channel::Link link = channel::make_single_path_link(tx, rx, rng);
  const Matrix h = link.draw_channel(rng);
  const real bf = optimal_beamforming_capacity(h, 1.0);
  const real wf = waterfilling_capacity(h, 1.0).capacity_bps_hz;
  EXPECT_GT(bf, 0.98 * wf);
}

TEST(BeamformingCapacityTest, ShapeValidation) {
  const Matrix h(4, 2);
  EXPECT_THROW(beamforming_capacity(h, Vector(4), Vector(4), 1.0),
               precondition_error);
}

}  // namespace
}  // namespace mmw::phy
