#include "randgen/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace mmw::randgen {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkProducesIndependentButDeterministicStreams) {
  Rng parent1(77), parent2(77);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1.uniform(), child2.uniform());
  // Child differs from a fresh same-seed parent stream.
  Rng parent3(77);
  Rng child3 = parent3.fork();
  EXPECT_NE(child3.uniform(), Rng(77).uniform());
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const real x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), precondition_error);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 7u);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  const int n = 20000;
  real sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const real x = rng.normal(1.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const real mean = sum / n;
  const real var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ComplexNormalVarianceSplit) {
  Rng rng(4);
  const int n = 20000;
  real pw = 0.0, re = 0.0, im = 0.0;
  for (int i = 0; i < n; ++i) {
    const cx z = rng.complex_normal(3.0);
    pw += std::norm(z);
    re += z.real() * z.real();
    im += z.imag() * z.imag();
  }
  EXPECT_NEAR(pw / n, 3.0, 0.15);
  EXPECT_NEAR(re / n, 1.5, 0.1);
  EXPECT_NEAR(im / n, 1.5, 0.1);
}

TEST(RngTest, ChiSquaredMean) {
  Rng rng(5);
  const int n = 20000;
  real sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.chi_squared(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
  EXPECT_THROW(rng.chi_squared(0.0), precondition_error);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(6);
  const int n = 20000;
  real sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
  EXPECT_THROW(rng.exponential(0.0), precondition_error);
}

TEST(RngTest, PoissonMean) {
  Rng rng(7);
  const int n = 20000;
  real sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<real>(rng.poisson(1.8));
  EXPECT_NEAR(sum / n, 1.8, 0.1);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(8);
  const int n = 20001;
  std::vector<real> xs(n);
  for (auto& x : xs) x = rng.lognormal(0.0, 1.0);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 1.0, 0.1);  // median of exp(N(0,1)) is e⁰ = 1
}

TEST(RngTest, AngleRange) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const real a = rng.angle();
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 2.0 * M_PI);
  }
}

TEST(RngTest, GaussianVectorPower) {
  Rng rng(10);
  const auto v = rng.complex_gaussian_vector(5000, 2.0);
  EXPECT_NEAR(v.squared_norm() / 5000.0, 2.0, 0.15);
}

TEST(RngTest, GaussianMatrixShape) {
  Rng rng(11);
  const auto m = rng.complex_gaussian_matrix(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(RngTest, RandomUnitVectorHasUnitNorm) {
  Rng rng(12);
  for (int i = 0; i < 20; ++i)
    EXPECT_NEAR(rng.random_unit_vector(8).norm(), 1.0, 1e-12);
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(13);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<index_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : s) EXPECT_LT(i, 100u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), precondition_error);
}

TEST(RngTest, SampleCoversFullRangeOverTrials) {
  Rng rng(14);
  std::set<index_t> seen;
  for (int t = 0; t < 200; ++t) {
    for (const auto i : rng.sample_without_replacement(10, 3)) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);  // every index reachable
}

TEST(RngTest, ThreeKeyStreamIsDeterministic) {
  Rng a = Rng::stream(42, 3, 1, 7);
  Rng b = Rng::stream(42, 3, 1, 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, ThreeKeyStreamSeparatesEveryKey) {
  // Changing any single key — or permuting them — must land on a
  // different stream: the multi-cell engine partitions its entire key
  // space through this property (serving vs cross vs beam draws).
  const Rng base = Rng::stream(42, 3, 1, 7);
  auto first = [](Rng r) { return r.uniform(); };
  EXPECT_NE(first(base), first(Rng::stream(43, 3, 1, 7)));
  EXPECT_NE(first(base), first(Rng::stream(42, 4, 1, 7)));
  EXPECT_NE(first(base), first(Rng::stream(42, 3, 2, 7)));
  EXPECT_NE(first(base), first(Rng::stream(42, 3, 1, 8)));
  EXPECT_NE(first(base), first(Rng::stream(42, 1, 3, 7)));
  EXPECT_NE(first(base), first(Rng::stream(42, 7, 1, 3)));
}

TEST(RngTest, ThreeKeyStreamsLookIndependent) {
  // Adjacent keys in each position produce streams with no pairwise
  // collisions over a short horizon (SplitMix64 finalization per key).
  std::set<double> seen;
  int draws = 0;
  for (std::uint64_t a = 0; a < 4; ++a)
    for (std::uint64_t b = 0; b < 4; ++b)
      for (std::uint64_t c = 0; c < 4; ++c) {
        Rng r = Rng::stream(2016, a, b, c);
        for (int i = 0; i < 8; ++i) {
          seen.insert(r.uniform());
          ++draws;
        }
      }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(draws));
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(15);
  const auto p = rng.permutation(50);
  EXPECT_EQ(p.size(), 50u);
  std::set<index_t> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 50u);
}

}  // namespace
}  // namespace mmw::randgen
