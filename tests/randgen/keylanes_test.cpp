// The reserved key-lane registry (randgen/keylanes.h): the table must stay
// pairwise disjoint — a lane collision silently correlates two subsystems'
// streams, which no other test would catch until a statistic drifted.
#include "randgen/keylanes.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "fault/fault.h"
#include "randgen/rng.h"

namespace mmw::randgen::lanes {
namespace {

constexpr std::size_t kLaneCount =
    sizeof(kReservedLanes) / sizeof(kReservedLanes[0]);

TEST(KeyLanesTest, RegistryCoversEveryNamedLane) {
  // Adding a lane constant without a registry row defeats the overlap
  // check; this pins the table length to the six reserved lanes.
  EXPECT_EQ(kLaneCount, 6u);
}

TEST(KeyLanesTest, SpansArePositiveAndDoNotWrap) {
  for (const KeyLane& lane : kReservedLanes) {
    SCOPED_TRACE(lane.name);
    EXPECT_GT(lane.span, 0u);
    EXPECT_LE(lane.span,
              std::numeric_limits<std::uint64_t>::max() - lane.base);
  }
}

TEST(KeyLanesTest, LanesArePairwiseDisjoint) {
  // Table-driven: every pair of [base, base + span) intervals.
  for (std::size_t i = 0; i < kLaneCount; ++i)
    for (std::size_t j = i + 1; j < kLaneCount; ++j) {
      const KeyLane& a = kReservedLanes[i];
      const KeyLane& b = kReservedLanes[j];
      SCOPED_TRACE(std::string(a.name) + " vs " + b.name);
      const bool disjoint =
          a.base + a.span <= b.base || b.base + b.span <= a.base;
      EXPECT_TRUE(disjoint)
          << a.name << " [" << a.base << ", " << a.base + a.span << ") and "
          << b.name << " [" << b.base << ", " << b.base + b.span
          << ") overlap";
    }
}

TEST(KeyLanesTest, HelpersLandInsideTheirLane) {
  const std::uint64_t site = 12345, user = 678, tracker = 3;
  EXPECT_GE(serve_user_lane(site), kServeLaneBase);
  EXPECT_LT(serve_user_lane(site), kServeLaneBase + kServeLaneSpan);
  EXPECT_GE(serve_churn_lane(site), kServeLaneBase);
  EXPECT_LT(serve_churn_lane(site), kServeLaneBase + kServeLaneSpan);
  EXPECT_GE(temporal_lane(site), kTemporalLaneBase);
  EXPECT_LT(temporal_lane(site), kTemporalLaneBase + kTemporalLaneSpan);
  EXPECT_GE(track_link_lane(site), kTrackLinkLaneBase);
  EXPECT_LT(track_link_lane(site), kTrackLinkLaneBase + kTrackLinkLaneSpan);
  EXPECT_GE(track_measure_lane(tracker), kTrackMeasureLaneBase);
  EXPECT_LT(track_measure_lane(tracker),
            kTrackMeasureLaneBase + kTrackMeasureLaneSpan);
  (void)user;
}

TEST(KeyLanesTest, ServeLanesInterleaveWithoutCollision) {
  // user/churn lanes of the same and adjacent sites never collide.
  for (std::uint64_t site = 0; site < 64; ++site) {
    EXPECT_NE(serve_user_lane(site), serve_churn_lane(site));
    EXPECT_NE(serve_user_lane(site + 1), serve_churn_lane(site));
    EXPECT_NE(serve_user_lane(site), serve_user_lane(site + 1));
  }
}

TEST(KeyLanesTest, FaultModuleAliasesTheRegistryBase) {
  // fault::kFaultKeyBase predates the registry; it must stay the same
  // value so the registry's interval actually covers the fault streams.
  EXPECT_EQ(fault::kFaultKeyBase, kFaultLaneBase);
}

TEST(KeyLanesTest, DistinctLanesYieldDistinctStreams) {
  // Spot-check the property the registry exists for: streams keyed from
  // different lanes (same seed/key_b/key_c) decorrelate immediately.
  const std::uint64_t seed = 20160610;
  for (std::size_t i = 0; i < kLaneCount; ++i)
    for (std::size_t j = i + 1; j < kLaneCount; ++j) {
      Rng a = Rng::stream(seed, kReservedLanes[i].base, 7, 9);
      Rng b = Rng::stream(seed, kReservedLanes[j].base, 7, 9);
      EXPECT_NE(a.uniform(), b.uniform())
          << kReservedLanes[i].name << " vs " << kReservedLanes[j].name;
    }
}

}  // namespace
}  // namespace mmw::randgen::lanes
