#include "linalg/functions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "randgen/rng.h"

namespace mmw::linalg {
namespace {

using randgen::Rng;

TEST(PsdProjectTest, PsdInputUnchanged) {
  const real d[] = {2.0, 1.0, 0.5};
  Matrix a = Matrix::diagonal(std::span<const real>(d));
  EXPECT_TRUE(approx_equal(psd_project(a), a, 1e-10));
}

TEST(PsdProjectTest, NegativeEigenvaluesClipped) {
  const real d[] = {2.0, -3.0};
  Matrix p = psd_project(Matrix::diagonal(std::span<const real>(d)));
  EXPECT_NEAR(p(0, 0).real(), 2.0, 1e-10);
  EXPECT_NEAR(p(1, 1).real(), 0.0, 1e-10);
}

TEST(PsdProjectTest, ResultIsAlwaysPsd) {
  Rng rng(3);
  Matrix g = rng.complex_gaussian_matrix(8, 8);
  Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
  Matrix p = psd_project(a);
  const EigResult r = hermitian_eig(p);
  for (const real e : r.eigenvalues) EXPECT_GE(e, -1e-9);
}

TEST(PsdProjectTest, ProjectionIsIdempotent) {
  Rng rng(4);
  Matrix g = rng.complex_gaussian_matrix(6, 6);
  Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
  Matrix p = psd_project(a);
  EXPECT_TRUE(approx_equal(psd_project(p), p, 1e-8 * (1.0 + p.frobenius_norm())));
}

TEST(HermitianSqrtTest, SquaresBack) {
  Rng rng(5);
  Matrix x = rng.complex_gaussian_matrix(6, 3);
  Matrix a = x * x.adjoint();  // PSD, rank ≤ 3
  Matrix s = hermitian_sqrt(a);
  EXPECT_TRUE(approx_equal(s * s, a, 1e-8 * (1.0 + a.frobenius_norm())));
  EXPECT_TRUE(s.is_hermitian(1e-8));
}

TEST(HermitianSqrtTest, IdentityRoot) {
  EXPECT_TRUE(approx_equal(hermitian_sqrt(Matrix::identity(4)),
                           Matrix::identity(4), 1e-10));
}

TEST(HermitianSqrtTest, RejectsIndefinite) {
  const real d[] = {1.0, -2.0};
  EXPECT_THROW(hermitian_sqrt(Matrix::diagonal(std::span<const real>(d))),
               precondition_error);
}

TEST(SoftThresholdTest, ShrinksEigenvalues) {
  const real d[] = {5.0, 2.0, 0.5};
  Matrix s =
      eigenvalue_soft_threshold(Matrix::diagonal(std::span<const real>(d)), 1.0);
  EXPECT_NEAR(s(0, 0).real(), 4.0, 1e-10);
  EXPECT_NEAR(s(1, 1).real(), 1.0, 1e-10);
  EXPECT_NEAR(s(2, 2).real(), 0.0, 1e-10);  // clipped at zero
}

TEST(SoftThresholdTest, ZeroThresholdOnPsdIsIdentityMap) {
  Rng rng(6);
  Matrix x = rng.complex_gaussian_matrix(5, 5);
  Matrix a = x * x.adjoint();
  EXPECT_TRUE(approx_equal(eigenvalue_soft_threshold(a, 0.0), a,
                           1e-8 * a.frobenius_norm()));
}

TEST(SoftThresholdTest, LargeThresholdAnnihilates) {
  Rng rng(7);
  Matrix x = rng.complex_gaussian_matrix(4, 4);
  Matrix a = x * x.adjoint();
  Matrix s = eigenvalue_soft_threshold(a, 1e6);
  EXPECT_NEAR(s.frobenius_norm(), 0.0, 1e-6);
}

TEST(SoftThresholdTest, NegativeThresholdRejected) {
  EXPECT_THROW(eigenvalue_soft_threshold(Matrix::identity(2), -1.0),
               precondition_error);
}

TEST(SoftThresholdTest, ReducesRank) {
  const real d[] = {5.0, 0.5, 0.4, 0.3};
  Matrix s =
      eigenvalue_soft_threshold(Matrix::diagonal(std::span<const real>(d)), 1.0);
  EXPECT_EQ(numerical_rank(s), 1u);
}

TEST(NormTest, NuclearNormOfDiagonal) {
  const real d[] = {3.0, -4.0};
  EXPECT_NEAR(nuclear_norm(Matrix::diagonal(std::span<const real>(d))), 7.0,
              1e-9);
}

TEST(NormTest, SpectralNormOfDiagonal) {
  const real d[] = {3.0, -4.0};
  EXPECT_NEAR(spectral_norm(Matrix::diagonal(std::span<const real>(d))), 4.0,
              1e-9);
}

TEST(NormTest, NormInequalities) {
  Rng rng(8);
  Matrix a = rng.complex_gaussian_matrix(6, 6);
  const real spec = spectral_norm(a);
  const real frob = a.frobenius_norm();
  const real nuc = nuclear_norm(a);
  EXPECT_LE(spec, frob + 1e-9);
  EXPECT_LE(frob, nuc + 1e-9);
}

TEST(RankTest, ExactLowRank) {
  Rng rng(9);
  Matrix x = rng.complex_gaussian_matrix(8, 3);
  EXPECT_EQ(numerical_rank(x * x.adjoint(), 1e-8), 3u);
}

TEST(RankTest, ZeroMatrixHasRankZero) {
  EXPECT_EQ(numerical_rank(Matrix(4, 4)), 0u);
}

TEST(RankTest, FullRankIdentity) {
  EXPECT_EQ(numerical_rank(Matrix::identity(5)), 5u);
}

TEST(KroneckerTest, Dimensions) {
  Matrix a(2, 3), b(4, 5);
  Matrix k = kronecker(a, b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_EQ(k.cols(), 15u);
}

TEST(KroneckerTest, IdentityKronIdentity) {
  EXPECT_TRUE(approx_equal(kronecker(Matrix::identity(2), Matrix::identity(3)),
                           Matrix::identity(6), 1e-14));
}

TEST(KroneckerTest, MixedProductProperty) {
  Rng rng(10);
  Matrix a = rng.complex_gaussian_matrix(2, 2);
  Matrix b = rng.complex_gaussian_matrix(3, 3);
  Matrix c = rng.complex_gaussian_matrix(2, 2);
  Matrix d = rng.complex_gaussian_matrix(3, 3);
  // (A⊗B)(C⊗D) = (AC)⊗(BD)
  Matrix lhs = kronecker(a, b) * kronecker(c, d);
  Matrix rhs = kronecker(a * c, b * d);
  EXPECT_TRUE(approx_equal(lhs, rhs, 1e-9 * (1.0 + rhs.frobenius_norm())));
}

TEST(LowRankApproxTest, TruncatesToRankK) {
  Rng rng(11);
  Matrix a = rng.complex_gaussian_matrix(8, 8);
  Matrix a2 = low_rank_approximation(a, 2);
  EXPECT_EQ(numerical_rank(a2, 1e-8), 2u);
}

TEST(LowRankApproxTest, FullRankIsExact) {
  Rng rng(12);
  Matrix a = rng.complex_gaussian_matrix(5, 5);
  EXPECT_TRUE(approx_equal(low_rank_approximation(a, 5), a,
                           1e-8 * a.frobenius_norm()));
}

TEST(LowRankApproxTest, OptimalityVsRandomRankK) {
  // The truncated SVD must beat a random rank-k approximation.
  Rng rng(13);
  Matrix a = rng.complex_gaussian_matrix(6, 6);
  Matrix best = low_rank_approximation(a, 2);
  Vector x = rng.random_unit_vector(6);
  Vector y = rng.random_unit_vector(6);
  Matrix rnd = Matrix::outer(x, y);
  EXPECT_LE((a - best).frobenius_norm(), (a - rnd).frobenius_norm() + 1e-12);
}

}  // namespace
}  // namespace mmw::linalg
