#include "linalg/factored.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::linalg {
namespace {

using randgen::Rng;

/// Random N×r matrix with orthonormal columns (Gram–Schmidt on Gaussians).
Matrix random_orthonormal_basis(Rng& rng, index_t n, index_t r) {
  Matrix b(n, r);
  std::vector<Vector> cols;
  for (index_t k = 0; k < r; ++k) {
    Vector v = rng.complex_gaussian_vector(n);
    for (const Vector& c : cols) v -= dot(c, v) * c;
    cols.push_back(v.normalized());
    b.set_col(k, cols.back());
  }
  return b;
}

/// Random r×r Hermitian PSD core.
Matrix random_psd_core(Rng& rng, index_t r) {
  const Matrix g = rng.complex_gaussian_matrix(r, r);
  return g * g.adjoint();
}

TEST(FactoredHermitianTest, ConstructorValidatesShapes) {
  Rng rng(1);
  const Matrix basis = random_orthonormal_basis(rng, 8, 3);
  EXPECT_THROW(FactoredHermitian(basis, Matrix(2, 3)), precondition_error);
  EXPECT_THROW(FactoredHermitian(basis, Matrix(4, 4)), precondition_error);
  EXPECT_THROW(FactoredHermitian(Matrix(2, 4), Matrix(4, 4)),
               precondition_error);
  EXPECT_THROW(FactoredHermitian::from_dense(Matrix(3, 4)),
               precondition_error);
  const FactoredHermitian f(basis, random_psd_core(rng, 3));
  EXPECT_EQ(f.dim(), 8u);
  EXPECT_EQ(f.rank(), 3u);
  EXPECT_FALSE(f.is_full());
  EXPECT_FALSE(f.empty());
  EXPECT_TRUE(FactoredHermitian().empty());
}

TEST(FactoredHermitianTest, DenseMatchesExplicitLift) {
  Rng rng(2);
  const index_t n = 10, r = 4;
  const Matrix basis = random_orthonormal_basis(rng, n, r);
  const Matrix core = random_psd_core(rng, r);
  const FactoredHermitian f(basis, core);
  const Matrix lifted = basis * core * basis.adjoint();
  EXPECT_TRUE(approx_equal(f.dense(), lifted, 1e-10));
  // The cache is stable: a second call returns the identical object.
  EXPECT_EQ(&f.dense(), &f.dense());
}

TEST(FactoredHermitianTest, RayleighMatchesDenseHermitianForm) {
  Rng rng(3);
  const index_t n = 12, r = 5;
  const FactoredHermitian f(random_orthonormal_basis(rng, n, r),
                            random_psd_core(rng, r));
  for (int t = 0; t < 10; ++t) {
    const Vector v = rng.random_unit_vector(n);
    EXPECT_NEAR(f.rayleigh(v), hermitian_form(v, f.dense()),
                1e-10 * (1.0 + std::abs(f.rayleigh(v))));
    EXPECT_DOUBLE_EQ(f.rayleigh_projected(f.project(v)), f.rayleigh(v));
  }
}

TEST(FactoredHermitianTest, FullModeIsBitIdenticalToDenseFormulas) {
  // from_dense must take exactly the dense code paths so that codebook
  // scoring of a wrapped matrix cannot drift from scoring the matrix
  // itself by even one ulp.
  Rng rng(4);
  const Matrix g = rng.complex_gaussian_matrix(6, 6);
  const Matrix q = g * g.adjoint();
  const FactoredHermitian f = FactoredHermitian::from_dense(q);
  EXPECT_TRUE(f.is_full());
  EXPECT_EQ(f.rank(), 6u);
  for (int t = 0; t < 10; ++t) {
    const Vector v = rng.random_unit_vector(6);
    const real a = f.rayleigh(v);
    const real b = hermitian_form(v, q);
    EXPECT_EQ(a, b);  // exact, not approximate
  }
  EXPECT_EQ(f.trace(), q.trace().real());
}

TEST(FactoredHermitianTest, ProjectIsBasisAdjointAction) {
  Rng rng(5);
  const index_t n = 9, r = 3;
  const Matrix basis = random_orthonormal_basis(rng, n, r);
  const FactoredHermitian f(basis, random_psd_core(rng, r));
  const Vector v = rng.complex_gaussian_vector(n);
  const Vector p = f.project(v);
  ASSERT_EQ(p.size(), r);
  const Vector expected = basis.adjoint() * v;
  EXPECT_TRUE(approx_equal(p, expected, 1e-12));
}

TEST(FactoredHermitianTest, ApplyMatchesDenseProduct) {
  Rng rng(6);
  const index_t n = 11, r = 4;
  const FactoredHermitian f(random_orthonormal_basis(rng, n, r),
                            random_psd_core(rng, r));
  const Vector v = rng.complex_gaussian_vector(n);
  EXPECT_TRUE(approx_equal(f.apply(v), f.dense() * v, 1e-9));
}

TEST(FactoredHermitianTest, TraceEqualsDenseTrace) {
  Rng rng(7);
  const FactoredHermitian f(random_orthonormal_basis(rng, 10, 4),
                            random_psd_core(rng, 4));
  EXPECT_NEAR(f.trace(), f.dense().trace().real(), 1e-10);
}

TEST(FactoredHermitianTest, EigLiftsCoreEigenpairs) {
  Rng rng(8);
  const index_t n = 10, r = 3;
  const FactoredHermitian f(random_orthonormal_basis(rng, n, r),
                            random_psd_core(rng, r));
  const EigResult e = f.eig();
  ASSERT_EQ(e.eigenvalues.size(), r);
  EXPECT_EQ(e.eigenvectors.rows(), n);
  EXPECT_EQ(e.eigenvectors.cols(), r);
  // Descending order and the eigenpair property Q u = λ u in ambient space.
  for (index_t k = 0; k < r; ++k) {
    if (k > 0) {
      EXPECT_GE(e.eigenvalues[k - 1], e.eigenvalues[k]);
    }
    const Vector u = e.eigenvectors.col(k);
    EXPECT_NEAR(u.norm(), 1.0, 1e-9);
    EXPECT_TRUE(approx_equal(f.dense() * u, u * cx{e.eigenvalues[k], 0.0},
                             1e-8 * (1.0 + std::abs(e.eigenvalues[k]))));
  }
  // The dense spectrum is the core spectrum plus exact zeros.
  const EigResult dense_eig = hermitian_eig(f.dense());
  for (index_t k = 0; k < r; ++k)
    EXPECT_NEAR(e.eigenvalues[k], dense_eig.eigenvalues[k],
                1e-8 * (1.0 + std::abs(e.eigenvalues[0])));
  for (index_t k = r; k < n; ++k)
    EXPECT_NEAR(dense_eig.eigenvalues[k], 0.0, 1e-8);
}

TEST(FactoredHermitianTest, PrincipalEigenvectorAlignsWithPlanted) {
  Rng rng(9);
  const index_t n = 16;
  const Vector x = rng.random_unit_vector(n);
  // Rank-1 planted matrix expressed in factored form with a 1-wide basis.
  Matrix basis(n, 1);
  basis.set_col(0, x);
  Matrix core(1, 1);
  core(0, 0) = cx{7.5, 0.0};
  const FactoredHermitian f(basis, core);
  EXPECT_NEAR(std::abs(dot(f.principal_eigenvector(), x)), 1.0, 1e-10);
}

TEST(FactoredHermitianTest, BasisAccessorGuardsFullMode) {
  const FactoredHermitian f = FactoredHermitian::from_dense(
      Matrix::identity(4));
  EXPECT_THROW(f.basis(), precondition_error);
}

TEST(MatrixAddScaledOuterTest, MatchesOuterProductRoute) {
  Rng rng(10);
  const index_t n = 7;
  const Vector a = rng.complex_gaussian_vector(n);
  const Vector b = rng.complex_gaussian_vector(n);
  const cx alpha{0.7, -0.3};
  Matrix in_place = rng.complex_gaussian_matrix(n, n);
  Matrix via_temp = in_place;
  in_place.add_scaled_outer(alpha, a, b);
  via_temp += alpha * Matrix::outer(a, b);
  // Bit-identical, not just close: the solvers rely on this when swapping
  // the temporary-allocating route for the in-place kernel.
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      EXPECT_EQ(in_place(i, j).real(), via_temp(i, j).real());
      EXPECT_EQ(in_place(i, j).imag(), via_temp(i, j).imag());
    }
}

TEST(MatrixAddScaledOuterTest, NegatedAlphaMatchesSubtraction) {
  Rng rng(11);
  const index_t n = 6;
  const Vector a = rng.complex_gaussian_vector(n);
  const real c = 0.42;
  Matrix in_place = rng.complex_gaussian_matrix(n, n);
  Matrix via_temp = in_place;
  in_place.add_scaled_outer(cx{-c, 0.0}, a, a);
  via_temp -= cx{c, 0.0} * Matrix::outer(a, a);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      EXPECT_EQ(in_place(i, j).real(), via_temp(i, j).real());
      EXPECT_EQ(in_place(i, j).imag(), via_temp(i, j).imag());
    }
}

TEST(MatrixAddScaledOuterTest, ShapeMismatchThrows) {
  Matrix m(3, 4);
  EXPECT_THROW(m.add_scaled_outer(cx{1.0, 0.0}, Vector(4), Vector(4)),
               precondition_error);
  EXPECT_THROW(m.add_scaled_outer(cx{1.0, 0.0}, Vector(3), Vector(3)),
               precondition_error);
}

}  // namespace
}  // namespace mmw::linalg
