#include "linalg/vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmw::linalg {
namespace {

TEST(VectorTest, DefaultConstructedIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(VectorTest, SizedConstructorZeroInitializes) {
  Vector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], (cx{0.0, 0.0}));
}

TEST(VectorTest, InitializerList) {
  Vector v{cx{1.0, 2.0}, cx{3.0, -1.0}};
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], (cx{1.0, 2.0}));
  EXPECT_EQ(v[1], (cx{3.0, -1.0}));
}

TEST(VectorTest, AtThrowsOutOfRange) {
  Vector v(3);
  EXPECT_THROW(v.at(3), precondition_error);
  const Vector& cv = v;
  EXPECT_THROW(cv.at(5), precondition_error);
}

TEST(VectorTest, AdditionAndSubtraction) {
  Vector a{cx{1, 0}, cx{0, 1}};
  Vector b{cx{2, 0}, cx{0, -1}};
  Vector sum = a + b;
  EXPECT_EQ(sum[0], (cx{3, 0}));
  EXPECT_EQ(sum[1], (cx{0, 0}));
  Vector diff = a - b;
  EXPECT_EQ(diff[0], (cx{-1, 0}));
  EXPECT_EQ(diff[1], (cx{0, 2}));
}

TEST(VectorTest, MismatchedSizesThrow) {
  Vector a(2), b(3);
  EXPECT_THROW(a += b, precondition_error);
  EXPECT_THROW(a -= b, precondition_error);
  EXPECT_THROW(dot(a, b), precondition_error);
}

TEST(VectorTest, ScalarMultiplyDivide) {
  Vector v{cx{1, 1}};
  Vector scaled = v * cx{0.0, 1.0};
  EXPECT_EQ(scaled[0], (cx{-1, 1}));
  Vector divided = scaled / cx{0.0, 1.0};
  EXPECT_NEAR(std::abs(divided[0] - cx{1, 1}), 0.0, 1e-15);
}

TEST(VectorTest, DivisionByZeroThrows) {
  Vector v{cx{1, 0}};
  EXPECT_THROW((v / cx{0.0, 0.0}), precondition_error);
}

TEST(VectorTest, UnaryNegation) {
  Vector v{cx{1, -2}};
  Vector n = -v;
  EXPECT_EQ(n[0], (cx{-1, 2}));
}

TEST(VectorTest, DotIsConjugateLinearInFirstArgument) {
  Vector a{cx{0.0, 1.0}};  // i
  Vector b{cx{1.0, 0.0}};  // 1
  // dot(a,b) = conj(i)·1 = −i
  EXPECT_EQ(dot(a, b), (cx{0.0, -1.0}));
  EXPECT_EQ(dot(b, a), (cx{0.0, 1.0}));
}

TEST(VectorTest, DotOfSelfIsSquaredNorm) {
  Vector v{cx{3, 4}, cx{0, 2}};
  const cx d = dot(v, v);
  EXPECT_NEAR(d.real(), v.squared_norm(), 1e-12);
  EXPECT_NEAR(d.imag(), 0.0, 1e-12);
  EXPECT_NEAR(v.squared_norm(), 29.0, 1e-12);
}

TEST(VectorTest, NormAndNormalized) {
  Vector v{cx{3, 0}, cx{4, 0}};
  EXPECT_NEAR(v.norm(), 5.0, 1e-12);
  Vector u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u[0].real(), 0.6, 1e-12);
}

TEST(VectorTest, NormalizeZeroVectorThrows) {
  Vector v(3);
  EXPECT_THROW(v.normalized(), precondition_error);
}

TEST(VectorTest, ConjugateFlipsImaginary) {
  Vector v{cx{1, 2}};
  EXPECT_EQ(v.conjugate()[0], (cx{1, -2}));
}

TEST(VectorTest, BasisVector) {
  Vector e = Vector::basis(4, 2);
  EXPECT_EQ(e[2], (cx{1, 0}));
  EXPECT_NEAR(e.norm(), 1.0, 1e-15);
  EXPECT_THROW(Vector::basis(3, 3), precondition_error);
}

TEST(VectorTest, OnesVector) {
  Vector o = Vector::ones(3);
  EXPECT_NEAR(o.squared_norm(), 3.0, 1e-15);
}

TEST(VectorTest, ApproxEqual) {
  Vector a{cx{1, 0}};
  Vector b{cx{1.0 + 1e-12, 0}};
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, b, 1e-15));
  EXPECT_FALSE(approx_equal(a, Vector(2), 1.0));
}

TEST(VectorTest, SpanConstructor) {
  std::vector<cx> raw{cx{1, 0}, cx{2, 0}};
  Vector v{std::span<const cx>(raw)};
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], (cx{2, 0}));
}

}  // namespace
}  // namespace mmw::linalg
