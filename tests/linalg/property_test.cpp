// Randomized property sweeps over the decomposition stack: ~200 seeded
// random matrices per property spread across N ∈ {4, 16, 64} (weighted
// towards the small sizes so the sweep stays fast; the large size keeps
// the paper-scale N = 64 RX dimension honest). Every case derives from a
// fixed master seed, so a failure message's size/seed pair reproduces the
// exact matrix.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompositions.h"
#include "linalg/eig.h"
#include "linalg/factored.h"
#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::linalg {
namespace {

using randgen::Rng;

/// One sweep slice: `cases` random draws at size n. The three slices sum
/// to ~200 cases per property.
struct SizeCases {
  index_t n;
  index_t cases;
};

void PrintTo(const SizeCases& p, std::ostream* os) {
  *os << "n" << p.n << "_x" << p.cases;
}

constexpr std::uint64_t kMasterSeed = 0x5eedfacedULL;

Matrix random_hermitian(Rng& rng, index_t n) {
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  return (g + g.adjoint()) * cx{0.5, 0.0};
}

/// Random Hermitian PSD with a well-defined Cholesky factor: G Gᴴ + εI.
Matrix random_psd(Rng& rng, index_t n) {
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  Matrix a = g * g.adjoint();
  for (index_t i = 0; i < n; ++i) a(i, i) += cx{1e-6, 0.0};
  return a;
}

class DecompositionProperty : public ::testing::TestWithParam<SizeCases> {};

TEST_P(DecompositionProperty, EigReconstructsWithOrthonormalBasis) {
  const auto [n, cases] = GetParam();
  for (index_t c = 0; c < cases; ++c) {
    Rng rng = Rng::stream(kMasterSeed, n, c, 1);
    const Matrix a = random_hermitian(rng, n);
    // Alternate solvers so both the Jacobi and the QL path face every size.
    const EigResult r = (c % 2 == 0) ? hermitian_eig_ql(a) : hermitian_eig(a);

    ASSERT_EQ(r.eigenvalues.size(), n) << "n=" << n << " case=" << c;
    EXPECT_TRUE(approx_equal(r.eigenvectors.adjoint() * r.eigenvectors,
                             Matrix::identity(n), 1e-9 * n))
        << "n=" << n << " case=" << c;

    Matrix rebuilt(n, n);
    for (index_t k = 0; k < n; ++k)
      rebuilt += cx{r.eigenvalues[k], 0.0} *
                 Matrix::outer(r.eigenvectors.col(k), r.eigenvectors.col(k));
    EXPECT_LE((rebuilt - a).frobenius_norm(), 1e-10 * n * a.frobenius_norm())
        << "n=" << n << " case=" << c;
  }
}

TEST_P(DecompositionProperty, CholeskyRoundTrips) {
  const auto [n, cases] = GetParam();
  for (index_t c = 0; c < cases; ++c) {
    Rng rng = Rng::stream(kMasterSeed, n, c, 2);
    const Matrix a = random_psd(rng, n);
    const Matrix l = cholesky(a);
    // Lower-triangular factor…
    for (index_t i = 0; i < n; ++i)
      for (index_t j = i + 1; j < n; ++j)
        EXPECT_EQ(l(i, j), (cx{0.0, 0.0})) << "n=" << n << " case=" << c;
    // …that reproduces the matrix.
    EXPECT_LE((l * l.adjoint() - a).frobenius_norm(),
              1e-10 * n * a.frobenius_norm())
        << "n=" << n << " case=" << c;
  }
}

TEST_P(DecompositionProperty, PsdProjectionIsIdempotentAndPsd) {
  const auto [n, cases] = GetParam();
  for (index_t c = 0; c < cases; ++c) {
    Rng rng = Rng::stream(kMasterSeed, n, c, 3);
    const Matrix a = random_hermitian(rng, n);
    const Matrix p = psd_project(a);

    const EigResult r = hermitian_eig_ql(p);
    EXPECT_GE(r.eigenvalues.back(), -1e-9 * (1.0 + a.frobenius_norm()))
        << "n=" << n << " case=" << c;
    // Projecting a point already on the cone is a no-op.
    EXPECT_LE((psd_project(p) - p).frobenius_norm(),
              1e-9 * n * (1.0 + p.frobenius_norm()))
        << "n=" << n << " case=" << c;
  }
}

TEST_P(DecompositionProperty, FactoredRayleighMatchesDenseLift) {
  const auto [n, cases] = GetParam();
  const index_t rank = std::max<index_t>(1, n / 4);
  for (index_t c = 0; c < cases; ++c) {
    Rng rng = Rng::stream(kMasterSeed, n, c, 4);
    // Orthonormal basis from a QR of a random tall matrix, PSD core.
    const Matrix basis =
        qr_decompose(rng.complex_gaussian_matrix(n, rank)).q;
    const Matrix g = rng.complex_gaussian_matrix(rank, rank);
    const FactoredHermitian q(basis, g * g.adjoint());

    const Vector v = rng.random_unit_vector(n);
    EXPECT_NEAR(q.rayleigh(v), hermitian_form(v, q.dense()),
                1e-10 * (1.0 + q.dense().frobenius_norm()))
        << "n=" << n << " case=" << c;
    // The lift round-trips through from_dense up to eig tolerance.
    const FactoredHermitian lifted = FactoredHermitian::from_dense(q.dense());
    EXPECT_NEAR(lifted.rayleigh(v), q.rayleigh(v),
                1e-8 * (1.0 + q.dense().frobenius_norm()))
        << "n=" << n << " case=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrixSweep, DecompositionProperty,
                         ::testing::Values(SizeCases{4, 120},
                                           SizeCases{16, 60},
                                           SizeCases{64, 20}),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace mmw::linalg
