#include "linalg/eig.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"
#include "randgen/rng.h"

namespace mmw::linalg {
namespace {

using randgen::Rng;

/// Builds a random Hermitian matrix with the given eigenvalues (Haar-random
/// eigenbasis from QR-free Gram-Schmidt of a Gaussian matrix).
Matrix hermitian_with_spectrum(Rng& rng, const std::vector<real>& eigs) {
  const index_t n = eigs.size();
  // Gram–Schmidt a random Gaussian matrix into a unitary.
  Matrix g = rng.complex_gaussian_matrix(n, n);
  Matrix u(n, n);
  for (index_t j = 0; j < n; ++j) {
    Vector v = g.col(j);
    for (index_t k = 0; k < j; ++k) {
      const Vector uk = u.col(k);
      v -= dot(uk, v) * uk;
    }
    u.set_col(j, v.normalized());
  }
  Matrix a(n, n);
  for (index_t k = 0; k < n; ++k) {
    const Vector uk = u.col(k);
    a += cx{eigs[k], 0.0} * Matrix::outer(uk, uk);
  }
  return a;
}

TEST(EigTest, DiagonalMatrix) {
  const real d[] = {3.0, -1.0, 2.0};
  const EigResult r = hermitian_eig(Matrix::diagonal(std::span<const real>(d)));
  ASSERT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], -1.0, 1e-12);
}

TEST(EigTest, RequiresSquareHermitian) {
  EXPECT_THROW(hermitian_eig(Matrix(2, 3)), precondition_error);
  Matrix not_h{{cx{0, 0}, cx{1, 0}}, {cx{2, 0}, cx{0, 0}}};
  EXPECT_THROW(hermitian_eig(not_h), precondition_error);
}

TEST(EigTest, PauliY) {
  // σ_y has eigenvalues ±1.
  Matrix m{{cx{0, 0}, cx{0, -1}}, {cx{0, 1}, cx{0, 0}}};
  const EigResult r = hermitian_eig(m);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], -1.0, 1e-12);
}

TEST(EigTest, ReconstructsInput) {
  Rng rng(42);
  const std::vector<real> eigs{5.0, 2.5, 1.0, 0.25, -0.5};
  Matrix a = hermitian_with_spectrum(rng, eigs);
  const EigResult r = hermitian_eig(a);
  // A = V Λ Vᴴ
  Matrix rebuilt(a.rows(), a.cols());
  for (index_t k = 0; k < eigs.size(); ++k) {
    const Vector vk = r.eigenvectors.col(k);
    rebuilt += cx{r.eigenvalues[k], 0.0} * Matrix::outer(vk, vk);
  }
  EXPECT_TRUE(approx_equal(rebuilt, a, 1e-9 * a.frobenius_norm()));
}

TEST(EigTest, EigenvectorsAreOrthonormal) {
  Rng rng(7);
  Matrix a = hermitian_with_spectrum(rng, {4.0, 3.0, 2.0, 1.0});
  const EigResult r = hermitian_eig(a);
  const Matrix vhv = r.eigenvectors.adjoint() * r.eigenvectors;
  EXPECT_TRUE(approx_equal(vhv, Matrix::identity(4), 1e-10));
}

TEST(EigTest, EigenpairsSatisfyDefinition) {
  Rng rng(11);
  Matrix a = hermitian_with_spectrum(rng, {10.0, 5.0, 1.0});
  const EigResult r = hermitian_eig(a);
  for (index_t k = 0; k < 3; ++k) {
    const Vector vk = r.eigenvectors.col(k);
    const Vector av = a * vk;
    const Vector lv = cx{r.eigenvalues[k], 0.0} * vk;
    EXPECT_TRUE(approx_equal(av, lv, 1e-9)) << "eigenpair " << k;
  }
}

TEST(EigTest, DegenerateSpectrum) {
  Rng rng(3);
  Matrix a = hermitian_with_spectrum(rng, {2.0, 2.0, 2.0, 1.0});
  const EigResult r = hermitian_eig(a);
  EXPECT_NEAR(r.eigenvalues[0], 2.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[2], 2.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[3], 1.0, 1e-10);
  const Matrix vhv = r.eigenvectors.adjoint() * r.eigenvectors;
  EXPECT_TRUE(approx_equal(vhv, Matrix::identity(4), 1e-10));
}

TEST(EigTest, TraceEqualsEigenvalueSum) {
  Rng rng(19);
  Matrix a = hermitian_with_spectrum(rng, {3.0, 1.0, -2.0, 0.5, 4.0, -1.0});
  const EigResult r = hermitian_eig(a);
  real sum = 0.0;
  for (const real e : r.eigenvalues) sum += e;
  EXPECT_NEAR(sum, a.trace().real(), 1e-9);
}

TEST(EigTest, LargeRandomMatrixConverges) {
  Rng rng(101);
  Matrix g = rng.complex_gaussian_matrix(64, 64);
  Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
  const EigResult r = hermitian_eig(a);
  // Spot-check the dominant eigenpair.
  const Vector v0 = r.eigenvectors.col(0);
  EXPECT_TRUE(
      approx_equal(a * v0, cx{r.eigenvalues[0], 0.0} * v0, 1e-8));
  // Descending order.
  for (index_t k = 1; k < 64; ++k)
    EXPECT_GE(r.eigenvalues[k - 1], r.eigenvalues[k]);
}

TEST(EigTest, PrincipalEigenvectorOfRankOne) {
  Rng rng(5);
  Vector x = rng.random_unit_vector(8);
  Matrix a = Matrix::outer(x, x) * cx{6.0, 0.0};
  const EigResult r = hermitian_eig(a);
  EXPECT_NEAR(r.eigenvalues[0], 6.0, 1e-9);
  // Principal eigenvector matches x up to a global phase.
  EXPECT_NEAR(std::abs(dot(r.principal_eigenvector(), x)), 1.0, 1e-9);
}

TEST(EigTest, EnergyFractionOfLowRank) {
  Rng rng(13);
  Matrix a = hermitian_with_spectrum(rng, {10.0, 9.0, 0.5, 0.25, 0.25, 0.0});
  const EigResult r = hermitian_eig(a);
  EXPECT_NEAR(r.energy_fraction(2), 19.0 / 20.0, 1e-9);
  EXPECT_NEAR(r.energy_fraction(6), 1.0, 1e-12);
  EXPECT_NEAR(r.energy_fraction(0), 0.0, 1e-12);
}

TEST(EigTest, SweepExhaustionThrows) {
  Rng rng(23);
  Matrix g = rng.complex_gaussian_matrix(16, 16);
  Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
  JacobiOptions opts;
  opts.max_sweeps = 0;
  EXPECT_THROW(hermitian_eig(a, opts), convergence_error);
}

TEST(EigTest, SweepExhaustionAfterPartialProgressThrows) {
  // max_sweeps = 1 lets a full rotation sweep run before the budget check
  // fires — a dense random 12×12 cannot reach 1e-12 in one sweep, so this
  // exercises the throw on the mid-loop path, not the degenerate entry.
  Rng rng(29);
  Matrix g = rng.complex_gaussian_matrix(12, 12);
  Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
  JacobiOptions opts;
  opts.max_sweeps = 1;
  EXPECT_THROW(hermitian_eig(a, opts), convergence_error);
}

TEST(EigTest, SweepExhaustionIsCounted) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const auto count = [] {
    return obs::Registry::global()
        .snapshot()
        .counters.at("linalg.eig.sweeps_exhausted")
        .value;
  };
  Rng rng(31);
  Matrix g = rng.complex_gaussian_matrix(10, 10);
  Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
  JacobiOptions opts;
  opts.max_sweeps = 1;
  EXPECT_THROW(hermitian_eig(a, opts), convergence_error);
  const std::uint64_t after_first = count();
  EXPECT_GE(after_first, 1u);
  EXPECT_THROW(hermitian_eig(a, opts), convergence_error);
  EXPECT_EQ(count(), after_first + 1);
  obs::set_enabled(was_enabled);
}

// ----------------------------------------------------------- QL solver ----

TEST(EigQlTest, MatchesJacobiOnRandomHermitian) {
  Rng rng(61);
  for (const index_t n : {index_t{2}, index_t{5}, index_t{16}, index_t{40}}) {
    Matrix g = rng.complex_gaussian_matrix(n, n);
    Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
    const EigResult rj = hermitian_eig(a);
    const EigResult rq = hermitian_eig_ql(a);
    for (index_t k = 0; k < n; ++k)
      EXPECT_NEAR(rj.eigenvalues[k], rq.eigenvalues[k],
                  1e-10 * (1.0 + std::abs(rj.eigenvalues[k])))
          << "n=" << n << " k=" << k;
  }
}

TEST(EigQlTest, EigenpairsSatisfyDefinition) {
  Rng rng(62);
  Matrix g = rng.complex_gaussian_matrix(24, 24);
  Matrix a = (g + g.adjoint()) * cx{0.5, 0.0};
  const EigResult r = hermitian_eig_ql(a);
  for (index_t k = 0; k < 24; ++k) {
    const Vector vk = r.eigenvectors.col(k);
    EXPECT_TRUE(approx_equal(a * vk, cx{r.eigenvalues[k], 0.0} * vk, 1e-9));
  }
  const Matrix vhv = r.eigenvectors.adjoint() * r.eigenvectors;
  EXPECT_TRUE(approx_equal(vhv, Matrix::identity(24), 1e-10));
}

TEST(EigQlTest, DiagonalAndTinyMatrices) {
  const real d[] = {4.0, -2.0, 1.0};
  const EigResult r =
      hermitian_eig_ql(Matrix::diagonal(std::span<const real>(d)));
  EXPECT_NEAR(r.eigenvalues[0], 4.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], -2.0, 1e-12);
  // 1×1.
  Matrix one{{cx{7.0, 0.0}}};
  EXPECT_NEAR(hermitian_eig_ql(one).eigenvalues[0], 7.0, 1e-12);
}

TEST(EigQlTest, ComplexPhaseStructurePreserved) {
  // A matrix whose Householder reduction produces genuinely complex
  // off-diagonals; the phase-folding step must keep eigenvectors exact.
  Rng rng(63);
  Vector x = rng.random_unit_vector(12);
  Matrix a = Matrix::outer(x, x) * cx{3.0, 0.0} +
             Matrix::identity(12) * cx{0.5, 0.0};
  const EigResult r = hermitian_eig_ql(a);
  EXPECT_NEAR(r.eigenvalues[0], 3.5, 1e-10);
  EXPECT_NEAR(std::abs(dot(r.principal_eigenvector(), x)), 1.0, 1e-9);
}

TEST(EigQlTest, RejectsNonHermitian) {
  Matrix not_h{{cx{0, 0}, cx{1, 0}}, {cx{2, 0}, cx{0, 0}}};
  EXPECT_THROW(hermitian_eig_ql(not_h), precondition_error);
  EXPECT_THROW(hermitian_eig_ql(Matrix(2, 3)), precondition_error);
}

// ---------------------------------------------------------------- SVD -----

TEST(SvdTest, DiagonalRectangular) {
  Matrix a(3, 2);
  a(0, 0) = cx{3, 0};
  a(1, 1) = cx{2, 0};
  const SvdResult s = svd(a);
  ASSERT_EQ(s.singular_values.size(), 2u);
  EXPECT_NEAR(s.singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(s.singular_values[1], 2.0, 1e-10);
}

TEST(SvdTest, ReconstructsTallMatrix) {
  Rng rng(31);
  Matrix a = rng.complex_gaussian_matrix(6, 4);
  const SvdResult s = svd(a);
  Matrix rebuilt(6, 4);
  for (index_t k = 0; k < 4; ++k) {
    const Vector uk = s.u.col(k);
    const Vector vk = s.v.col(k);
    rebuilt += cx{s.singular_values[k], 0.0} * Matrix::outer(uk, vk);
  }
  EXPECT_TRUE(approx_equal(rebuilt, a, 1e-8 * a.frobenius_norm()));
}

TEST(SvdTest, ReconstructsWideMatrix) {
  Rng rng(37);
  Matrix a = rng.complex_gaussian_matrix(3, 7);
  const SvdResult s = svd(a);
  ASSERT_EQ(s.singular_values.size(), 3u);
  Matrix rebuilt(3, 7);
  for (index_t k = 0; k < 3; ++k)
    rebuilt += cx{s.singular_values[k], 0.0} *
               Matrix::outer(s.u.col(k), s.v.col(k));
  EXPECT_TRUE(approx_equal(rebuilt, a, 1e-8 * a.frobenius_norm()));
}

TEST(SvdTest, SingularValuesNonNegativeDescending) {
  Rng rng(41);
  Matrix a = rng.complex_gaussian_matrix(8, 8);
  const SvdResult s = svd(a);
  for (index_t k = 0; k < s.singular_values.size(); ++k) {
    EXPECT_GE(s.singular_values[k], 0.0);
    if (k > 0) {
      EXPECT_GE(s.singular_values[k - 1], s.singular_values[k]);
    }
  }
}

TEST(SvdTest, RankDeficientHasZeroSingularValues) {
  Rng rng(43);
  Vector x = rng.random_unit_vector(5);
  Vector y = rng.random_unit_vector(5);
  Matrix a = Matrix::outer(x, y);  // rank 1
  const SvdResult s = svd(a);
  EXPECT_NEAR(s.singular_values[0], 1.0, 1e-9);
  for (index_t k = 1; k < 5; ++k)
    EXPECT_NEAR(s.singular_values[k], 0.0, 1e-7);
}

TEST(SvdTest, EmptyThrows) { EXPECT_THROW(svd(Matrix()), precondition_error); }

}  // namespace
}  // namespace mmw::linalg
