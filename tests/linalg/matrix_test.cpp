#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmw::linalg {
namespace {

Matrix pauli_y() {
  return Matrix{{cx{0, 0}, cx{0, -1}}, {cx{0, 1}, cx{0, 0}}};
}

TEST(MatrixTest, ShapeAndZeroInit) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.is_square());
  EXPECT_EQ(m(1, 2), (cx{0, 0}));
}

TEST(MatrixTest, InitializerListLayout) {
  Matrix m{{cx{1, 0}, cx{2, 0}}, {cx{3, 0}, cx{4, 0}}};
  EXPECT_EQ(m(0, 1), (cx{2, 0}));
  EXPECT_EQ(m(1, 0), (cx{3, 0}));
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{cx{1, 0}}, {cx{1, 0}, cx{2, 0}}}), precondition_error);
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), precondition_error);
  EXPECT_THROW(m.at(0, 2), precondition_error);
}

TEST(MatrixTest, AdditionSubtractionShapeMismatch) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, precondition_error);
  EXPECT_THROW(a -= b, precondition_error);
}

TEST(MatrixTest, AdjointConjugatesAndTransposes) {
  Matrix m{{cx{1, 2}, cx{3, 4}}};
  Matrix h = m.adjoint();
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h.cols(), 1u);
  EXPECT_EQ(h(0, 0), (cx{1, -2}));
  EXPECT_EQ(h(1, 0), (cx{3, -4}));
}

TEST(MatrixTest, TransposeDoesNotConjugate) {
  Matrix m{{cx{1, 2}}};
  EXPECT_EQ(m.transpose()(0, 0), (cx{1, 2}));
}

TEST(MatrixTest, TraceRequiresSquare) {
  Matrix m(2, 3);
  EXPECT_THROW(m.trace(), precondition_error);
  Matrix s{{cx{1, 1}, cx{0, 0}}, {cx{0, 0}, cx{2, -1}}};
  EXPECT_EQ(s.trace(), (cx{3, 0}));
}

TEST(MatrixTest, IdentityAndMultiplication) {
  Matrix i = Matrix::identity(3);
  Matrix m{{cx{1, 0}, cx{2, 0}, cx{3, 0}},
           {cx{4, 0}, cx{5, 0}, cx{6, 0}},
           {cx{7, 0}, cx{8, 0}, cx{9, 0}}};
  EXPECT_TRUE(approx_equal(i * m, m, 1e-14));
  EXPECT_TRUE(approx_equal(m * i, m, 1e-14));
}

TEST(MatrixTest, MatrixProductValues) {
  Matrix a{{cx{1, 0}, cx{0, 1}}};      // 1×2
  Matrix b{{cx{2, 0}}, {cx{0, 2}}};    // 2×1
  Matrix p = a * b;                    // 1×1: 2 + i·2i = 2 − 2 = 0
  EXPECT_EQ(p.rows(), 1u);
  EXPECT_NEAR(std::abs(p(0, 0) - cx{0, 0}), 0.0, 1e-14);
}

TEST(MatrixTest, ProductShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, precondition_error);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix m{{cx{1, 0}, cx{2, 0}}, {cx{3, 0}, cx{4, 0}}};
  Vector v{cx{1, 0}, cx{1, 0}};
  Vector r = m * v;
  EXPECT_EQ(r[0], (cx{3, 0}));
  EXPECT_EQ(r[1], (cx{7, 0}));
  EXPECT_THROW(m * Vector(3), precondition_error);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m{{cx{3, 0}, cx{0, 4}}};
  EXPECT_NEAR(m.frobenius_norm(), 5.0, 1e-12);
}

TEST(MatrixTest, MaxAbs) {
  Matrix m{{cx{1, 0}, cx{0, -7}}, {cx{2, 2}, cx{0, 0}}};
  EXPECT_NEAR(m.max_abs(), 7.0, 1e-12);
}

TEST(MatrixTest, RowColExtractionAndAssignment) {
  Matrix m(2, 2);
  m.set_col(1, Vector{cx{5, 0}, cx{6, 0}});
  EXPECT_EQ(m(0, 1), (cx{5, 0}));
  m.set_row(0, Vector{cx{9, 0}, cx{8, 0}});
  EXPECT_EQ(m(0, 0), (cx{9, 0}));
  EXPECT_EQ(m(0, 1), (cx{8, 0}));
  Vector c = m.col(1);
  EXPECT_EQ(c[1], (cx{6, 0}));
  Vector r = m.row(0);
  EXPECT_EQ(r[1], (cx{8, 0}));
}

TEST(MatrixTest, HermitianDetection) {
  EXPECT_TRUE(pauli_y().is_hermitian());
  Matrix not_h{{cx{0, 0}, cx{1, 0}}, {cx{2, 0}, cx{0, 0}}};
  EXPECT_FALSE(not_h.is_hermitian());
  EXPECT_FALSE(Matrix(2, 3).is_hermitian());
  // Non-real diagonal breaks Hermitianness.
  Matrix imag_diag{{cx{0, 1}}};
  EXPECT_FALSE(imag_diag.is_hermitian());
}

TEST(MatrixTest, DiagonalFactory) {
  const real entries[] = {1.0, 2.0};
  Matrix d = Matrix::diagonal(std::span<const real>(entries));
  EXPECT_EQ(d(0, 0), (cx{1, 0}));
  EXPECT_EQ(d(1, 1), (cx{2, 0}));
  EXPECT_EQ(d(0, 1), (cx{0, 0}));
}

TEST(MatrixTest, OuterProductIsRankOneHermitianForSelf) {
  Vector a{cx{1, 1}, cx{0, 2}};
  Matrix m = Matrix::outer(a, a);
  EXPECT_TRUE(m.is_hermitian(1e-14));
  EXPECT_NEAR(m.trace().real(), a.squared_norm(), 1e-12);
}

TEST(MatrixTest, OuterProductValues) {
  Vector a{cx{1, 0}};
  Vector b{cx{0, 1}};
  Matrix m = Matrix::outer(a, b);  // a bᴴ = 1·conj(i) = −i
  EXPECT_EQ(m(0, 0), (cx{0, -1}));
}

TEST(MatrixTest, QuadraticAndHermitianForms) {
  Matrix q = pauli_y();
  Vector v{cx{1, 0}, cx{0, 1}};  // (1, i)
  // vᴴ σ_y v = conj(v)·(σ_y v); σ_y v = (−i·i, i·1) = (1, i) = v → vᴴv = 2.
  EXPECT_NEAR(hermitian_form(v, q), 2.0, 1e-12);
  EXPECT_THROW(hermitian_form(v, Matrix(2, 3)), precondition_error);
}

TEST(MatrixTest, ScalarOps) {
  Matrix m{{cx{1, 0}}};
  EXPECT_EQ((m * cx{2, 0})(0, 0), (cx{2, 0}));
  EXPECT_EQ((cx{0, 1} * m)(0, 0), (cx{0, 1}));
  EXPECT_EQ((m / cx{2, 0})(0, 0), (cx{0.5, 0}));
  EXPECT_EQ((-m)(0, 0), (cx{-1, 0}));
  EXPECT_THROW((m / cx{0, 0}), precondition_error);
}

}  // namespace
}  // namespace mmw::linalg
