#include "linalg/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "linalg/factored.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "randgen/rng.h"

namespace mmw::linalg::kernels {
namespace {

using randgen::Rng;

/// Random N×r matrix with orthonormal columns (Gram–Schmidt on Gaussians).
Matrix random_orthonormal_basis(Rng& rng, index_t n, index_t r) {
  Matrix b(n, r);
  std::vector<Vector> cols;
  for (index_t k = 0; k < r; ++k) {
    Vector v = rng.complex_gaussian_vector(n);
    for (const Vector& c : cols) v -= dot(c, v) * c;
    cols.push_back(v.normalized());
    b.set_col(k, cols.back());
  }
  return b;
}

/// Random r×r Hermitian core (indefinite is fine for kernel tests).
Matrix random_hermitian(Rng& rng, index_t r) {
  const Matrix g = rng.complex_gaussian_matrix(r, r);
  return (g + g.adjoint()) * cx{0.5, 0.0};
}

std::vector<Vector> random_codewords(Rng& rng, index_t n, index_t count) {
  std::vector<Vector> out;
  out.reserve(count);
  for (index_t v = 0; v < count; ++v)
    out.push_back(rng.random_unit_vector(n));
  return out;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

TEST(KernelDispatchTest, ActiveTierIsNamed) {
  const Tier t = active_tier();
  EXPECT_TRUE(t == Tier::kScalar || t == Tier::kAvx2);
  EXPECT_TRUE(active_tier_name() == "scalar" || active_tier_name() == "avx2");
  EXPECT_EQ(tier_name(t), active_tier_name());
}

TEST(KernelDispatchTest, Avx2TierRequiresCpuSupport) {
  if (cpu_supports_avx2()) {
    force_tier_for_testing(Tier::kAvx2);
    EXPECT_EQ(active_tier(), Tier::kAvx2);
    reset_tier_for_testing();
  } else {
    EXPECT_THROW(force_tier_for_testing(Tier::kAvx2), precondition_error);
  }
}

TEST(KernelDispatchTest, ForceAndResetRoundTrip) {
  const Tier original = active_tier();
  force_tier_for_testing(Tier::kScalar);
  EXPECT_EQ(active_tier(), Tier::kScalar);
  reset_tier_for_testing();
  EXPECT_EQ(active_tier(), original);
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  ArenaScope scope(arena);
  const auto a = arena.alloc<double>(3);
  const auto b = arena.alloc<double>(5);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 32, 0u);
  // Disjoint: b starts at or after a's (aligned) end.
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(b.data()),
            reinterpret_cast<std::uintptr_t>(a.data() + a.size()));
}

TEST(ArenaTest, ScopeResetReusesMemory) {
  Arena arena;
  double* first = nullptr;
  {
    ArenaScope scope(arena);
    first = arena.alloc<double>(64).data();
    EXPECT_GT(arena.used_bytes(), 0u);
  }
  EXPECT_EQ(arena.used_bytes(), 0u);
  {
    ArenaScope scope(arena);
    // Same block, same offset: steady state allocates no new memory.
    EXPECT_EQ(arena.alloc<double>(64).data(), first);
  }
}

TEST(ArenaTest, NestedScopesResetOnlyAtOutermost) {
  Arena arena;
  ArenaScope outer(arena);
  arena.alloc<double>(8);
  const std::size_t used_before_inner = arena.used_bytes();
  {
    ArenaScope inner(arena);
    arena.alloc<double>(8);
    EXPECT_GT(arena.used_bytes(), used_before_inner);
  }
  // Inner scope closing must NOT free the outer scope's allocations.
  EXPECT_GE(arena.used_bytes(), used_before_inner);
}

TEST(ArenaTest, GrowsAndCoalescesAcrossResets) {
  Arena arena;
  {
    ArenaScope scope(arena);
    arena.alloc<double>(1 << 12);  // 32 KiB: larger than the first block
    arena.alloc<double>(1 << 13);  // forces a second block
  }
  const std::size_t capacity = arena.capacity_bytes();
  {
    // After the coalescing reset the same demand fits one block.
    ArenaScope scope(arena);
    arena.alloc<double>(1 << 12);
    arena.alloc<double>(1 << 13);
    EXPECT_EQ(arena.capacity_bytes(), capacity);
  }
}

TEST(ArenaTest, HighWaterTracksPeakUse) {
  Arena arena;
  {
    ArenaScope scope(arena);
    arena.alloc<double>(100);
  }
  const std::size_t peak = arena.high_water_bytes();
  EXPECT_GE(peak, 100 * sizeof(double));
  {
    ArenaScope scope(arena);
    arena.alloc<double>(10);
  }
  // Smaller later passes never lower the mark.
  EXPECT_EQ(arena.high_water_bytes(), peak);
  // The global (cross-thread) mark has seen at least this arena's peak once
  // a scope closed.
  EXPECT_GE(arena_high_water_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// SoA packing
// ---------------------------------------------------------------------------

TEST(SoAComplexTest, PackColumnsRoundTrips) {
  Rng rng(3);
  const auto codewords = random_codewords(rng, 7, 5);
  const SoAComplex packed = SoAComplex::pack_columns(codewords);
  EXPECT_EQ(packed.rows(), 7);
  EXPECT_EQ(packed.cols(), 5);
  for (index_t v = 0; v < 5; ++v)
    for (index_t i = 0; i < 7; ++i) EXPECT_EQ(packed.at(i, v), codewords[v][i]);
}

// ---------------------------------------------------------------------------
// Batched kernels vs the historical per-codeword formulas (bit-exact)
// ---------------------------------------------------------------------------

TEST(KernelEquivalenceTest, FactoredScoresMatchRayleighBitExact) {
  Rng rng(4);
  for (const index_t n : {4, 16, 64}) {
    for (index_t r = 1; r <= std::min<index_t>(8, n); ++r) {
      const Matrix basis = random_orthonormal_basis(rng, n, r);
      const Matrix core = random_hermitian(rng, r);
      const FactoredHermitian q(basis, core);
      const auto codewords = random_codewords(rng, n, 2 * n + 3);
      const SoAComplex packed = SoAComplex::pack_columns(codewords);
      std::vector<real> batched(codewords.size());
      factored_scores(basis, core, packed, batched);
      for (index_t v = 0; v < codewords.size(); ++v)
        EXPECT_EQ(batched[v], q.rayleigh(codewords[v]))
            << "n=" << n << " r=" << r << " v=" << v;
    }
  }
}

TEST(KernelEquivalenceTest, DenseScoresMatchHermitianFormBitExact) {
  Rng rng(5);
  for (const index_t n : {4, 16, 64}) {
    const Matrix q = random_hermitian(rng, n);
    const auto codewords = random_codewords(rng, n, n + 5);
    const SoAComplex packed = SoAComplex::pack_columns(codewords);
    std::vector<real> batched(codewords.size());
    dense_scores(q, packed, batched);
    for (index_t v = 0; v < codewords.size(); ++v)
      EXPECT_EQ(batched[v], hermitian_form(codewords[v], q))
          << "n=" << n << " v=" << v;
  }
}

TEST(KernelEquivalenceTest, AdjointGemmMatchesProjectBitExact) {
  Rng rng(6);
  const index_t n = 16;
  const index_t r = 5;
  const index_t count = 11;  // odd: exercises every SIMD tail
  const Matrix basis = random_orthonormal_basis(rng, n, r);
  const FactoredHermitian q(basis, random_hermitian(rng, r));
  const auto codewords = random_codewords(rng, n, count);
  const SoAComplex packed = SoAComplex::pack_columns(codewords);
  Arena arena;
  ArenaScope scope(arena);
  SoAView proj{arena.alloc<double>(r * count).data(),
               arena.alloc<double>(r * count).data(), r, count};
  adjoint_gemm_batch(basis, packed.view(), proj);
  for (index_t v = 0; v < count; ++v) {
    const Vector p = q.project(codewords[v]);
    for (index_t k = 0; k < r; ++k) {
      EXPECT_EQ(proj.re[k * count + v], p[k].real());
      EXPECT_EQ(proj.im[k * count + v], p[k].imag());
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar ↔ AVX2 tier equivalence (bit-exact across the dispatch boundary)
// ---------------------------------------------------------------------------

class TierEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!cpu_supports_avx2())
      GTEST_SKIP() << "CPU/build has no AVX2 tier to compare against";
  }
  void TearDown() override { reset_tier_for_testing(); }
};

TEST_F(TierEquivalenceTest, FactoredScoresBitIdenticalAcrossTiers) {
  Rng rng(7);
  for (const index_t n : {4, 16, 64, 128}) {
    for (index_t r = 1; r <= std::min<index_t>(8, n); ++r) {
      const Matrix basis = random_orthonormal_basis(rng, n, r);
      const Matrix core = random_hermitian(rng, r);
      // Codeword counts straddling the 8- and 4-lane kernel blocks.
      const auto codewords = random_codewords(rng, n, n + 3);
      const SoAComplex packed = SoAComplex::pack_columns(codewords);
      std::vector<real> scalar(codewords.size());
      std::vector<real> avx2(codewords.size());
      force_tier_for_testing(Tier::kScalar);
      factored_scores(basis, core, packed, scalar);
      force_tier_for_testing(Tier::kAvx2);
      factored_scores(basis, core, packed, avx2);
      EXPECT_EQ(scalar, avx2) << "n=" << n << " r=" << r;
    }
  }
}

TEST_F(TierEquivalenceTest, DenseScoresBitIdenticalAcrossTiers) {
  Rng rng(8);
  for (const index_t n : {4, 16, 64, 128}) {
    const Matrix q = random_hermitian(rng, n);
    const auto codewords = random_codewords(rng, n, n + 1);
    const SoAComplex packed = SoAComplex::pack_columns(codewords);
    std::vector<real> scalar(codewords.size());
    std::vector<real> avx2(codewords.size());
    force_tier_for_testing(Tier::kScalar);
    dense_scores(q, packed, scalar);
    force_tier_for_testing(Tier::kAvx2);
    dense_scores(q, packed, avx2);
    EXPECT_EQ(scalar, avx2) << "n=" << n;
  }
}

}  // namespace
}  // namespace mmw::linalg::kernels
