#include "linalg/decompositions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "randgen/rng.h"

namespace mmw::linalg {
namespace {

using randgen::Rng;

Matrix random_psd(Rng& rng, index_t n, index_t rank) {
  Matrix a(n, n);
  for (index_t k = 0; k < rank; ++k) {
    Vector x = rng.complex_gaussian_vector(n);
    a += Matrix::outer(x, x);
  }
  return (a + a.adjoint()) * cx{0.5, 0.0};
}

TEST(CholeskyTest, IdentityFactorsToIdentity) {
  Matrix l = cholesky(Matrix::identity(4));
  EXPECT_TRUE(approx_equal(l, Matrix::identity(4), 1e-12));
}

TEST(CholeskyTest, ReconstructsPositiveDefinite) {
  Rng rng(5);
  Matrix a = random_psd(rng, 6, 6) + Matrix::identity(6) * cx{0.1, 0.0};
  Matrix l = cholesky(a);
  EXPECT_TRUE(approx_equal(l * l.adjoint(), a, 1e-9 * a.frobenius_norm()));
}

TEST(CholeskyTest, LowerTriangular) {
  Rng rng(6);
  Matrix a = random_psd(rng, 5, 5) + Matrix::identity(5) * cx{0.1, 0.0};
  Matrix l = cholesky(a);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = i + 1; j < 5; ++j)
      EXPECT_NEAR(std::abs(l(i, j)), 0.0, 1e-12);
}

TEST(CholeskyTest, SemiDefiniteAccepted) {
  Rng rng(7);
  // Rank-2 PSD 5×5 matrix.
  Matrix a = random_psd(rng, 5, 2);
  Matrix l = cholesky(a);
  EXPECT_TRUE(approx_equal(l * l.adjoint(), a, 1e-7 * a.frobenius_norm()));
}

TEST(CholeskyTest, IndefiniteRejected) {
  const real d[] = {1.0, -1.0};
  EXPECT_THROW(cholesky(Matrix::diagonal(std::span<const real>(d))),
               precondition_error);
}

TEST(CholeskyTest, NonHermitianRejected) {
  Matrix m{{cx{1, 0}, cx{1, 0}}, {cx{0, 0}, cx{1, 0}}};
  EXPECT_THROW(cholesky(m), precondition_error);
}

TEST(LuTest, SolveRecoversKnownSolution) {
  Rng rng(8);
  Matrix a = rng.complex_gaussian_matrix(7, 7);
  Vector x_true = rng.complex_gaussian_vector(7);
  Vector b = a * x_true;
  Vector x = solve(a, b);
  EXPECT_TRUE(approx_equal(x, x_true, 1e-8 * x_true.norm()));
}

TEST(LuTest, SolveSingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = cx{1, 0};
  a(0, 1) = cx{2, 0};
  a(1, 0) = cx{2, 0};
  a(1, 1) = cx{4, 0};
  EXPECT_THROW(solve(a, Vector{cx{1, 0}, cx{1, 0}}), precondition_error);
}

TEST(LuTest, SolveShapeMismatchThrows) {
  EXPECT_THROW(solve(Matrix::identity(3), Vector(2)), precondition_error);
}

TEST(LuTest, DecomposeMarksSingular) {
  Matrix a(3, 3);  // zero matrix
  EXPECT_TRUE(lu_decompose(a).singular);
  EXPECT_FALSE(lu_decompose(Matrix::identity(3)).singular);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(9);
  Matrix a = rng.complex_gaussian_matrix(6, 6);
  Matrix inv = inverse(a);
  EXPECT_TRUE(approx_equal(a * inv, Matrix::identity(6), 1e-8));
  EXPECT_TRUE(approx_equal(inv * a, Matrix::identity(6), 1e-8));
}

TEST(LuTest, DeterminantOfDiagonal) {
  const real d[] = {2.0, 3.0, -1.0};
  const cx det = determinant(Matrix::diagonal(std::span<const real>(d)));
  EXPECT_NEAR(det.real(), -6.0, 1e-10);
  EXPECT_NEAR(det.imag(), 0.0, 1e-10);
}

TEST(LuTest, DeterminantSingularIsZero) {
  Matrix a(2, 2);
  a(0, 0) = cx{1, 0};
  a(1, 0) = cx{1, 0};
  EXPECT_EQ(determinant(a), (cx{0, 0}));
}

TEST(LuTest, DeterminantMatchesPermutationSign) {
  // [[0,1],[1,0]] has determinant −1 and requires a pivot swap.
  Matrix a{{cx{0, 0}, cx{1, 0}}, {cx{1, 0}, cx{0, 0}}};
  EXPECT_NEAR(determinant(a).real(), -1.0, 1e-12);
}

TEST(QrTest, ReconstructsSquareMatrix) {
  Rng rng(30);
  const Matrix a = rng.complex_gaussian_matrix(6, 6);
  const QrResult f = qr_decompose(a);
  EXPECT_TRUE(approx_equal(f.q * f.r, a, 1e-9 * (1.0 + a.frobenius_norm())));
}

TEST(QrTest, ReconstructsTallMatrix) {
  Rng rng(31);
  const Matrix a = rng.complex_gaussian_matrix(9, 4);
  const QrResult f = qr_decompose(a);
  EXPECT_EQ(f.q.rows(), 9u);
  EXPECT_EQ(f.q.cols(), 4u);
  EXPECT_EQ(f.r.rows(), 4u);
  EXPECT_TRUE(approx_equal(f.q * f.r, a, 1e-9 * (1.0 + a.frobenius_norm())));
}

TEST(QrTest, QHasOrthonormalColumns) {
  Rng rng(32);
  const Matrix a = rng.complex_gaussian_matrix(8, 5);
  const QrResult f = qr_decompose(a);
  EXPECT_TRUE(
      approx_equal(f.q.adjoint() * f.q, Matrix::identity(5), 1e-10));
}

TEST(QrTest, RIsUpperTriangularWithRealNonNegativeDiagonal) {
  Rng rng(33);
  const Matrix a = rng.complex_gaussian_matrix(7, 7);
  const QrResult f = qr_decompose(a);
  for (index_t i = 0; i < 7; ++i) {
    for (index_t j = 0; j < i; ++j)
      EXPECT_NEAR(std::abs(f.r(i, j)), 0.0, 1e-10);
    EXPECT_GE(f.r(i, i).real(), -1e-12);
    EXPECT_NEAR(f.r(i, i).imag(), 0.0, 1e-10);
  }
}

TEST(QrTest, WideMatrixRejected) {
  EXPECT_THROW(qr_decompose(Matrix(2, 3)), precondition_error);
}

TEST(LeastSquaresTest, ExactSystemRecovered) {
  Rng rng(34);
  const Matrix a = rng.complex_gaussian_matrix(5, 5);
  const Vector x_true = rng.complex_gaussian_vector(5);
  const Vector x = least_squares(a, a * x_true);
  EXPECT_TRUE(approx_equal(x, x_true, 1e-8 * (1.0 + x_true.norm())));
}

TEST(LeastSquaresTest, ResidualOrthogonalToColumnSpace) {
  Rng rng(35);
  const Matrix a = rng.complex_gaussian_matrix(10, 3);
  const Vector b = rng.complex_gaussian_vector(10);
  const Vector x = least_squares(a, b);
  const Vector residual = a * x - b;
  // Aᴴ r = 0 at the least-squares optimum.
  const Vector atr = a.adjoint() * residual;
  EXPECT_NEAR(atr.norm(), 0.0, 1e-8 * (1.0 + b.norm()));
}

TEST(LeastSquaresTest, RankDeficientRejected) {
  Matrix a(4, 2);
  a(0, 0) = cx{1, 0};
  a(1, 0) = cx{2, 0};  // second column all zero → rank 1
  EXPECT_THROW(least_squares(a, Vector(4)), precondition_error);
}

}  // namespace
}  // namespace mmw::linalg
