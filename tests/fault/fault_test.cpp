#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/context.h"

namespace mmw::fault {
namespace {

FaultConfig all_faults() {
  FaultConfig c;
  c.blockage_probability = 1.0;
  c.outlier_probability = 0.2;
  c.drop_probability = 0.2;
  c.solver_stress_probability = 0.5;
  return c;
}

TEST(FaultConfigTest, DefaultIsNoOp) {
  const FaultConfig c;
  EXPECT_FALSE(c.any());
  FaultConfig q;
  q.quarantine_trials = true;  // error-handling knob, not an injection
  EXPECT_FALSE(q.any());
}

TEST(FaultConfigTest, AnyDetectsEachKnob) {
  for (int knob = 0; knob < 4; ++knob) {
    FaultConfig c;
    if (knob == 0) c.blockage_probability = 0.5;
    if (knob == 1) c.outlier_probability = 0.5;
    if (knob == 2) c.drop_probability = 0.5;
    if (knob == 3) c.solver_stress_probability = 0.5;
    EXPECT_TRUE(c.any()) << knob;
  }
}

TEST(FaultPlanTest, DefaultPlanIsClean) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.has_blockage());
  EXPECT_FALSE(plan.blockage_active(0));
  EXPECT_FALSE(plan.solve_stressed(0));
  EXPECT_FALSE(plan.slot(0).dropped);
  EXPECT_EQ(plan.slot(0).energy_scale, 1.0);
  EXPECT_TRUE(plan.path_power_scale().empty());
}

TEST(FaultPlanTest, DrawIsAPureFunctionOfSeedEntityTrial) {
  const FaultConfig config = all_faults();
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    randgen::Rng a = fault_stream(123, 7, trial);
    randgen::Rng b = fault_stream(123, 7, trial);
    const FaultPlan pa = FaultPlan::draw(config, 50, 3, a);
    const FaultPlan pb = FaultPlan::draw(config, 50, 3, b);
    EXPECT_EQ(pa.blockage_onset(), pb.blockage_onset());
    for (index_t i = 0; i < 50; ++i) {
      EXPECT_EQ(pa.slot(i).dropped, pb.slot(i).dropped);
      EXPECT_EQ(pa.slot(i).energy_scale, pb.slot(i).energy_scale);
    }
    for (index_t k = 0; k < 100; ++k)
      EXPECT_EQ(pa.solve_stressed(k), pb.solve_stressed(k));
    ASSERT_EQ(pa.path_power_scale().size(), pb.path_power_scale().size());
    for (index_t l = 0; l < pa.path_power_scale().size(); ++l)
      EXPECT_EQ(pa.path_power_scale()[l], pb.path_power_scale()[l]);
  }
}

TEST(FaultPlanTest, EntitiesAndTrialsAreIndependentStreams) {
  const FaultConfig config = all_faults();
  randgen::Rng a = fault_stream(9, 0, 0);
  randgen::Rng b = fault_stream(9, 1, 0);
  randgen::Rng c = fault_stream(9, 0, 1);
  const FaultPlan pa = FaultPlan::draw(config, 64, 4, a);
  const FaultPlan pb = FaultPlan::draw(config, 64, 4, b);
  const FaultPlan pc = FaultPlan::draw(config, 64, 4, c);
  // Not a hard guarantee per-field, but three independent streams agreeing
  // on the whole schedule would be astronomically unlikely.
  auto fingerprint = [](const FaultPlan& p) {
    real acc = static_cast<real>(p.blockage_onset());
    for (index_t i = 0; i < 64; ++i)
      acc += p.slot(i).energy_scale + (p.slot(i).dropped ? 1000.0 : 0.0);
    for (index_t k = 0; k < 128; ++k) acc += p.solve_stressed(k) ? 7.0 : 0.0;
    return acc;
  };
  EXPECT_NE(fingerprint(pa), fingerprint(pb));
  EXPECT_NE(fingerprint(pa), fingerprint(pc));
}

TEST(FaultPlanTest, ScheduleIndependentOfOtherFaultToggles) {
  // The fixed draw order means toggling the outlier knob must not move the
  // drop schedule or the blockage onset (and vice versa).
  FaultConfig with = all_faults();
  FaultConfig without = with;
  without.outlier_probability = 0.0;
  randgen::Rng a = fault_stream(42, 0, 0);
  randgen::Rng b = fault_stream(42, 0, 0);
  const FaultPlan pa = FaultPlan::draw(with, 80, 3, a);
  const FaultPlan pb = FaultPlan::draw(without, 80, 3, b);
  EXPECT_EQ(pa.blockage_onset(), pb.blockage_onset());
  for (index_t i = 0; i < 80; ++i)
    EXPECT_EQ(pa.slot(i).dropped, pb.slot(i).dropped) << i;
  for (index_t k = 0; k < 160; ++k)
    EXPECT_EQ(pa.solve_stressed(k), pb.solve_stressed(k)) << k;
}

TEST(FaultPlanTest, BlockageOnsetWithinBudgetAndScalesValid) {
  FaultConfig config;
  config.blockage_probability = 1.0;
  config.blockage_attenuation_db = 20.0;
  config.blockage_path_probability = 0.5;
  for (std::uint64_t t = 0; t < 20; ++t) {
    randgen::Rng rng = fault_stream(5, 0, t);
    const FaultPlan plan = FaultPlan::draw(config, 40, 5, rng);
    ASSERT_TRUE(plan.has_blockage());
    EXPECT_LE(plan.blockage_onset(), 40u);
    EXPECT_TRUE(plan.blockage_active(40));
    ASSERT_EQ(plan.path_power_scale().size(), 5u);
    bool any_shadowed = false;
    for (const real s : plan.path_power_scale()) {
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, 1.0);
      if (s < 1.0) any_shadowed = true;
    }
    EXPECT_TRUE(any_shadowed);  // at least one path always shadowed
  }
}

TEST(FaultPlanTest, ZeroProbabilitiesDrawCleanSchedule) {
  FaultConfig config;
  config.quarantine_trials = true;  // quarantine alone injects nothing
  randgen::Rng rng = fault_stream(1, 0, 0);
  const FaultPlan plan = FaultPlan::draw(config, 30, 2, rng);
  EXPECT_FALSE(plan.has_blockage());
  for (index_t i = 0; i < 30; ++i) {
    EXPECT_FALSE(plan.slot(i).dropped);
    EXPECT_EQ(plan.slot(i).energy_scale, 1.0);
  }
  for (index_t k = 0; k < 60; ++k) EXPECT_FALSE(plan.solve_stressed(k));
}

TEST(FaultPlanTest, OutlierScaleRespectsPareto) {
  FaultConfig config;
  config.outlier_probability = 1.0;
  config.outlier_shape = 2.0;
  config.outlier_scale = 10.0;
  randgen::Rng rng = fault_stream(11, 0, 0);
  const FaultPlan plan = FaultPlan::draw(config, 200, 1, rng);
  for (index_t i = 0; i < 200; ++i)
    EXPECT_GE(plan.slot(i).energy_scale, 10.0) << i;  // Pareto minimum
}

TEST(FaultPlanTest, DrawValidatesProbabilities) {
  FaultConfig bad;
  bad.drop_probability = 1.5;
  randgen::Rng rng = fault_stream(1, 0, 0);
  EXPECT_THROW(FaultPlan::draw(bad, 10, 1, rng), precondition_error);
}

TEST(FaultPlanTest, ScriptedPlanRoundTrips) {
  std::vector<SlotFault> slots(4);
  slots[1].dropped = true;
  slots[2].energy_scale = 25.0;
  const FaultPlan plan = FaultPlan::scripted(
      slots, /*blockage_onset=*/2, {0.01, 1.0}, {false, true, false});
  EXPECT_TRUE(plan.slot(1).dropped);
  EXPECT_EQ(plan.slot(2).energy_scale, 25.0);
  EXPECT_FALSE(plan.slot(99).dropped);  // beyond schedule: clean
  EXPECT_TRUE(plan.has_blockage());
  EXPECT_FALSE(plan.blockage_active(1));
  EXPECT_TRUE(plan.blockage_active(2));
  EXPECT_TRUE(plan.solve_stressed(1));
  EXPECT_FALSE(plan.solve_stressed(2));
  EXPECT_FALSE(plan.solve_stressed(99));
}

TEST(FaultContextTest, ScopedArmAndRestore) {
  EXPECT_EQ(current_trial_faults(), nullptr);
  TrialFaultState outer;
  {
    ScopedTrialFaults guard(outer);
    EXPECT_EQ(current_trial_faults(), &outer);
    TrialFaultState inner;
    {
      ScopedTrialFaults nested(inner);
      EXPECT_EQ(current_trial_faults(), &inner);
    }
    EXPECT_EQ(current_trial_faults(), &outer);
  }
  EXPECT_EQ(current_trial_faults(), nullptr);
}

}  // namespace
}  // namespace mmw::fault
