// QuantileDigest accuracy, determinism, and memory-bound tests.
//
// The acceptance bar (ISSUE, DESIGN.md §14): max RANK error ≤ 1% against
// exact quantiles across distributions — including adversarially sorted
// input and shard-merged digests — with O(compression) memory and
// bit-identical results for identical operation sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "obs/digest.h"

namespace mmw::obs {
namespace {

/// Exact empirical quantile by the same midpoint-rank convention the digest
/// targets; for rank-error measurement we instead invert: find the rank of
/// the digest's estimate within the sorted sample.
real rank_of(const std::vector<real>& sorted, real value) {
  // Fraction of samples strictly below `value`, plus half the ties —
  // the continuous-rank convention under which midpoint interpolation
  // is unbiased.
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), value);
  const real below = static_cast<real>(lo - sorted.begin());
  const real ties = static_cast<real>(hi - lo);
  return (below + 0.5 * ties) / static_cast<real>(sorted.size());
}

/// Max |rank(estimate) - q| over a quantile sweep including the deep tails.
real max_rank_error(QuantileDigest& d, std::vector<real> samples) {
  std::sort(samples.begin(), samples.end());
  const std::vector<real> qs = {0.01, 0.05, 0.10, 0.25, 0.50, 0.75,
                                0.90, 0.95, 0.99, 0.995, 0.999};
  real worst = 0.0;
  for (const real q : qs) {
    const real est = d.quantile(q);
    worst = std::max(worst, std::abs(rank_of(samples, est) - q));
  }
  return worst;
}

std::vector<real> uniform_samples(std::uint64_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<real> u(-40.0, 10.0);
  std::vector<real> out(n);
  for (auto& x : out) x = u(rng);
  return out;
}

std::vector<real> normal_samples(std::uint64_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<real> g(-3.0, 4.0);
  std::vector<real> out(n);
  for (auto& x : out) x = g(rng);
  return out;
}

std::vector<real> lognormal_samples(std::uint64_t n, unsigned seed) {
  // Heavy right tail — the shape of loss-dB outliers; stresses the p999 end.
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<real> ln(0.0, 1.5);
  std::vector<real> out(n);
  for (auto& x : out) x = ln(rng);
  return out;
}

TEST(QuantileDigestTest, EmptyDigestIsZeroEverywhere) {
  QuantileDigest d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.quantile(0.5), 0.0);
  EXPECT_EQ(d.min_value(), 0.0);
  EXPECT_EQ(d.max_value(), 0.0);
  EXPECT_EQ(d.sum(), 0.0);
}

TEST(QuantileDigestTest, SingleAndFewSamplesAreExact) {
  QuantileDigest d;
  d.add(7.0);
  EXPECT_EQ(d.quantile(0.0), 7.0);
  EXPECT_EQ(d.quantile(0.5), 7.0);
  EXPECT_EQ(d.quantile(1.0), 7.0);

  QuantileDigest d3;
  d3.add(1.0);
  d3.add(2.0);
  d3.add(3.0);
  EXPECT_EQ(d3.quantile(0.0), 1.0);
  EXPECT_EQ(d3.quantile(1.0), 3.0);
  EXPECT_NEAR(d3.quantile(0.5), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(d3.sum(), 6.0);
}

TEST(QuantileDigestTest, MinMaxAreExactUnderCompression) {
  QuantileDigest d(64);
  const auto samples = normal_samples(50'000, 11);
  real lo = std::numeric_limits<real>::infinity(), hi = -lo;
  for (const real x : samples) {
    d.add(x);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_EQ(d.quantile(0.0), lo);
  EXPECT_EQ(d.quantile(1.0), hi);
  EXPECT_EQ(d.min_value(), lo);
  EXPECT_EQ(d.max_value(), hi);
  EXPECT_EQ(d.count(), 50'000u);
}

TEST(QuantileDigestTest, NonFiniteSamplesAreDropped) {
  QuantileDigest d;
  d.add(1.0);
  d.add(std::numeric_limits<real>::quiet_NaN());
  d.add(std::numeric_limits<real>::infinity());
  d.add(-std::numeric_limits<real>::infinity());
  d.add(2.0);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_EQ(d.max_value(), 2.0);
  EXPECT_TRUE(std::isfinite(d.quantile(0.999)));
}

TEST(QuantileDigestTest, RankErrorUnderOnePercentUniform) {
  const auto samples = uniform_samples(200'000, 42);
  QuantileDigest d;
  for (const real x : samples) d.add(x);
  EXPECT_LT(max_rank_error(d, samples), 0.01);
}

TEST(QuantileDigestTest, RankErrorUnderOnePercentNormal) {
  const auto samples = normal_samples(200'000, 7);
  QuantileDigest d;
  for (const real x : samples) d.add(x);
  EXPECT_LT(max_rank_error(d, samples), 0.01);
}

TEST(QuantileDigestTest, RankErrorUnderOnePercentHeavyTail) {
  const auto samples = lognormal_samples(200'000, 3);
  QuantileDigest d;
  for (const real x : samples) d.add(x);
  EXPECT_LT(max_rank_error(d, samples), 0.01);
}

TEST(QuantileDigestTest, RankErrorUnderOnePercentSortedInput) {
  // Pre-sorted input is the adversarial case for buffer-based sketches:
  // every flush appends at the right edge of the centroid list.
  auto samples = uniform_samples(200'000, 9);
  std::sort(samples.begin(), samples.end());
  QuantileDigest asc;
  for (const real x : samples) asc.add(x);
  EXPECT_LT(max_rank_error(asc, samples), 0.01);

  QuantileDigest desc;
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) desc.add(*it);
  EXPECT_LT(max_rank_error(desc, samples), 0.01);
}

TEST(QuantileDigestTest, RankErrorUnderOnePercentAfterShardMerge) {
  // Mirror the engine: per-shard digests over disjoint sample slices,
  // merged in flat shard order. Accuracy must survive the merge.
  const auto samples = normal_samples(240'000, 21);
  constexpr std::uint64_t kShards = 12;
  std::vector<QuantileDigest> shards(kShards, QuantileDigest{});
  for (std::uint64_t i = 0; i < samples.size(); ++i)
    shards[i % kShards].add(samples[i]);

  QuantileDigest merged;
  for (auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), samples.size());
  EXPECT_LT(max_rank_error(merged, samples), 0.01);
}

TEST(QuantileDigestTest, IdenticalSequencesYieldIdenticalQuantiles) {
  const auto samples = lognormal_samples(60'000, 5);
  QuantileDigest a, b;
  for (const real x : samples) {
    a.add(x);
    b.add(x);
  }
  // Bit-identical, not approximately equal: the NDJSON determinism gate
  // compares serialized doubles byte for byte.
  for (const real q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.centroid_count(), b.centroid_count());
}

TEST(QuantileDigestTest, ShardMergeIsThreadCountIndependent) {
  // The engine merges the SAME flat shard list regardless of --threads;
  // merging one-by-one must equal merging pre-combined groups, because the
  // operation sequence seen by the accumulator is identical. This is the
  // in-vitro version of the CI byte-identity gate.
  const auto samples = uniform_samples(90'000, 13);
  constexpr std::uint64_t kShards = 9;
  std::vector<QuantileDigest> shards(kShards, QuantileDigest{});
  for (std::uint64_t i = 0; i < samples.size(); ++i)
    shards[i % kShards].add(samples[i]);

  QuantileDigest seq;
  for (auto& s : shards) seq.merge(s);
  QuantileDigest again;
  for (auto& s : shards) again.merge(s);
  for (const real q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(seq.quantile(q), again.quantile(q)) << "q=" << q;
}

TEST(QuantileDigestTest, CentroidCountStaysBounded) {
  QuantileDigest d(128);
  const auto samples = normal_samples(500'000, 17);
  for (const real x : samples) d.add(x);
  d.flush();
  // O(compression) forever: the cluster bound ceil(W/compression) keeps the
  // list within ~2x compression regardless of stream length.
  EXPECT_LE(d.centroid_count(), 2 * d.compression());
  EXPECT_EQ(d.count(), samples.size());
}

TEST(QuantileDigestTest, CompressionFloorIsEnforced) {
  QuantileDigest d(1);  // clamped up to the minimum internally
  for (int i = 0; i < 10'000; ++i) d.add(static_cast<real>(i % 100));
  d.flush();
  EXPECT_GE(d.compression(), 8u);
  EXPECT_LE(d.centroid_count(), 2 * d.compression());
}

TEST(QuantileDigestTest, MergeWithEmptyIsIdentity) {
  QuantileDigest d, empty;
  for (int i = 0; i < 1'000; ++i) d.add(static_cast<real>(i));
  const real before = d.quantile(0.5);
  d.merge(empty);
  EXPECT_EQ(d.quantile(0.5), before);
  EXPECT_EQ(d.count(), 1'000u);

  QuantileDigest fresh;
  fresh.merge(d);
  EXPECT_EQ(fresh.count(), 1'000u);
  EXPECT_EQ(fresh.quantile(1.0), 999.0);
}

TEST(QuantileDigestTest, QuantilesAreMonotoneInQ) {
  QuantileDigest d;
  const auto samples = lognormal_samples(80'000, 29);
  for (const real x : samples) d.add(x);
  real prev = d.quantile(0.0);
  for (real q = 0.05; q <= 1.0 + 1e-9; q += 0.05) {
    const real cur = d.quantile(std::min(q, 1.0));
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

}  // namespace
}  // namespace mmw::obs
