// Exhaustive escaping tests for the push-style JsonWriter. Every telemetry
// surface (NDJSON export, Chrome traces, health.json, run manifests) funnels
// through append_quoted(), so the escaping rules are load-bearing: a single
// raw control character would make an entire NDJSON file unparseable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>

#include "obs/json.h"

namespace mmw::obs {
namespace {

std::string quoted(std::string_view raw) {
  JsonWriter w;
  w.string(raw);
  return std::move(w).str();
}

TEST(JsonWriterTest, PlainAsciiPassesThroughQuoted) {
  EXPECT_EQ(quoted("hello"), "\"hello\"");
  EXPECT_EQ(quoted(""), "\"\"");
  EXPECT_EQ(quoted("a b c 0-9 _./:;!?"), "\"a b c 0-9 _./:;!?\"");
}

TEST(JsonWriterTest, QuoteAndBackslashAreEscaped) {
  EXPECT_EQ(quoted("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(quoted("C:\\path\\file"), "\"C:\\\\path\\\\file\"");
  // Pathological alternation — each source char must map to exactly one
  // two-char escape, with no state leaking between them.
  EXPECT_EQ(quoted("\\\"\\\""), "\"\\\\\\\"\\\\\\\"\"");
}

TEST(JsonWriterTest, ShortEscapesForCommonControls) {
  EXPECT_EQ(quoted("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(quoted("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(quoted("col1\tcol2"), "\"col1\\tcol2\"");
}

TEST(JsonWriterTest, AllC0ControlCharactersAreEscaped) {
  // Every byte below 0x20 must come out as either a short escape or a
  // \u00XX sequence — never raw. RFC 8259 requires this of all of them.
  for (unsigned c = 0; c < 0x20; ++c) {
    const char ch = static_cast<char>(c);
    const std::string out = quoted(std::string_view(&ch, 1));
    std::string expected;
    switch (ch) {
      case '\n': expected = "\"\\n\""; break;
      case '\r': expected = "\"\\r\""; break;
      case '\t': expected = "\"\\t\""; break;
      default: {
        char buf[16];
        std::snprintf(buf, sizeof buf, "\"\\u%04x\"", c);
        expected = buf;
      }
    }
    EXPECT_EQ(out, expected) << "control char 0x" << std::hex << c;
  }
}

TEST(JsonWriterTest, EmbeddedNulIsEscapedNotTruncated) {
  // A string_view carries its length; the writer must not treat the NUL as
  // a terminator or emit it raw.
  const char raw[] = {'a', '\0', 'b'};
  EXPECT_EQ(quoted(std::string_view(raw, 3)), "\"a\\u0000b\"");
}

TEST(JsonWriterTest, NonAsciiBytesPassThroughUnchanged) {
  // UTF-8 payloads (bytes >= 0x80) are forwarded verbatim — JSON strings
  // are UTF-8, so escaping them would only bloat the output.
  EXPECT_EQ(quoted("caf\xc3\xa9"), "\"caf\xc3\xa9\"");        // café
  EXPECT_EQ(quoted("\xe2\x86\x92"), "\"\xe2\x86\x92\"");      // →
  EXPECT_EQ(quoted("\xf0\x9f\x9a\x80"), "\"\xf0\x9f\x9a\x80\"");  // rocket
  // DEL (0x7f) is not a C0 control; RFC 8259 permits it unescaped.
  EXPECT_EQ(quoted("\x7f"), "\"\x7f\"");
}

TEST(JsonWriterTest, KeysAreEscapedLikeStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("we\"ird\nkey");
  w.number(std::uint64_t{1});
  w.end_object();
  EXPECT_EQ(std::move(w).str(), "{\"we\\\"ird\\nkey\":1}");
}

TEST(JsonWriterTest, NonFiniteDoublesRenderAsNull) {
  JsonWriter w;
  w.begin_array();
  w.number(std::numeric_limits<double>::quiet_NaN());
  w.number(std::numeric_limits<double>::infinity());
  w.number(-std::numeric_limits<double>::infinity());
  w.number(1.5);
  w.end_array();
  EXPECT_EQ(std::move(w).str(), "[null,null,null,1.5]");
}

TEST(JsonWriterTest, CommasAndNestingComposeAutomatically) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.number(std::uint64_t{1});
  w.key("b");
  w.begin_array();
  w.string("x");
  w.boolean(true);
  w.null();
  w.end_array();
  w.key("c");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(std::move(w).str(), "{\"a\":1,\"b\":[\"x\",true,null],\"c\":{}}");
}

TEST(JsonWriterTest, RawSplicesFragmentsWithCorrectCommas) {
  JsonWriter inner;
  inner.begin_object();
  inner.key("k");
  inner.number(std::int64_t{-7});
  inner.end_object();

  JsonWriter w;
  w.begin_array();
  w.raw(inner.str());
  w.raw(inner.str());
  w.end_array();
  EXPECT_EQ(std::move(w).str(), "[{\"k\":-7},{\"k\":-7}]");
}

}  // namespace
}  // namespace mmw::obs
