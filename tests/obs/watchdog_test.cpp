// Watchdog tests: stall detection, recovery, the adaptive threshold, and
// the atomically rewritten health document.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/watchdog.h"

namespace mmw::obs {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

fs::path health_file(const char* tag) {
  const fs::path dir = fs::temp_directory_path() / "mmw_watchdog_test";
  fs::create_directories(dir);
  const fs::path p = dir / (std::string(tag) + ".health.json");
  fs::remove(p);
  return p;
}

/// Tight polling config so tests finish in tens of milliseconds: threshold
/// floor 50 ms, poll every 5 ms, no flight dump (keeps the process-global
/// dump budget for the tests that assert on it).
WatchdogConfig fast_config(std::string health_path) {
  WatchdogConfig cfg;
  cfg.health_path = std::move(health_path);
  cfg.poll_seconds = 0.005;
  cfg.stall_multiplier = 8.0;
  cfg.min_stall_seconds = 0.05;
  cfg.dump_flight_on_trip = false;
  return cfg;
}

/// Spin until `pred` holds or `deadline` elapses; returns pred's final
/// state. Timing-dependent assertions use generous deadlines so loaded CI
/// machines don't flake.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 5000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

TEST(WatchdogTest, NoTripWhileProgressFlows) {
  std::atomic<std::uint64_t> progress{0};
  Watchdog dog(fast_config(""),
               [&] { return progress.fetch_add(1) + 1; });
  std::this_thread::sleep_for(200ms);
  EXPECT_FALSE(dog.tripped());
  EXPECT_FALSE(dog.stalled());
  EXPECT_EQ(dog.trips(), 0u);
  dog.stop();
}

TEST(WatchdogTest, FrozenProgressTripsOnce) {
  std::atomic<std::uint64_t> progress{7};  // never advances
  Watchdog dog(fast_config(""), [&] { return progress.load(); });
  ASSERT_TRUE(eventually([&] { return dog.tripped(); }));
  EXPECT_TRUE(dog.stalled());
  // The trip is edge-triggered: a continuing stall is one trip, not one
  // per poll.
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(dog.trips(), 1u);
  dog.stop();
}

TEST(WatchdogTest, ProgressResumingClearsStalledButTripsStick) {
  std::atomic<std::uint64_t> progress{0};
  Watchdog dog(fast_config(""), [&] { return progress.load(); });
  ASSERT_TRUE(eventually([&] { return dog.stalled(); }));

  // Resume: bump progress continuously until the monitor notices.
  ASSERT_TRUE(eventually([&] {
    progress.fetch_add(1);
    return !dog.stalled();
  }));
  EXPECT_TRUE(dog.tripped());
  EXPECT_EQ(dog.trips(), 1u);

  // Freeze again: a second stall is a second trip.
  ASSERT_TRUE(eventually([&] { return dog.trips() >= 2; }));
  dog.stop();
}

TEST(WatchdogTest, ThresholdTracksEpochTimeWithFloor) {
  WatchdogConfig cfg = fast_config("");
  cfg.min_stall_seconds = 2.0;
  cfg.stall_multiplier = 8.0;
  std::atomic<std::uint64_t> progress{0};
  Watchdog dog(cfg, [&] { return progress.fetch_add(1) + 1; });

  // No epochs yet: the floor rules.
  EXPECT_DOUBLE_EQ(dog.stall_threshold_seconds(), 2.0);

  // Fast epochs stay under the floor...
  dog.note_epoch_seconds(0.01);
  EXPECT_DOUBLE_EQ(dog.stall_threshold_seconds(), 2.0);

  // ...slow epochs scale it up: first sample seeds the EWMA directly.
  dog.note_epoch_seconds(100.0);
  EXPECT_GT(dog.stall_threshold_seconds(), 2.0);
  EXPECT_LE(dog.stall_threshold_seconds(), 8.0 * 100.0);

  // Non-positive durations are ignored, not folded in as zero.
  const double before = dog.stall_threshold_seconds();
  dog.note_epoch_seconds(0.0);
  dog.note_epoch_seconds(-5.0);
  EXPECT_DOUBLE_EQ(dog.stall_threshold_seconds(), before);
  dog.stop();
}

TEST(WatchdogTest, HealthFileIsWrittenAndWellFormed) {
  const fs::path path = health_file("ok");
  std::atomic<std::uint64_t> progress{0};
  Watchdog dog(fast_config(path.string()),
               [&] { return progress.fetch_add(1) + 1; },
               [] {
                 return std::vector<std::pair<std::string, double>>{
                     {"epoch", 12.0}, {"live_sessions", 3456.0}};
               });
  ASSERT_TRUE(eventually([&] { return fs::exists(path); }));
  ASSERT_TRUE(eventually([&] {
    const std::string body = slurp(path);
    return body.find("\"status\":\"ok\"") != std::string::npos;
  }));

  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"schema\":\"mmw.health/1\""), std::string::npos);
  EXPECT_NE(body.find("\"progress\":"), std::string::npos);
  EXPECT_NE(body.find("\"seconds_since_progress\":"), std::string::npos);
  EXPECT_NE(body.find("\"stall_threshold_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"trips\":0"), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"rss_bytes\":"), std::string::npos);
  // StatusFn extras land as additional numeric fields.
  EXPECT_NE(body.find("\"epoch\":12"), std::string::npos);
  EXPECT_NE(body.find("\"live_sessions\":3456"), std::string::npos);
  // Atomic rewrite: the document is complete (single JSON object).
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '}');

  dog.stop();
  // stop() leaves a terminal "stopped" document behind.
  EXPECT_NE(slurp(path).find("\"status\":\"stopped\""), std::string::npos);
  fs::remove(path);
}

TEST(WatchdogTest, HealthFileReportsStalled) {
  const fs::path path = health_file("stalled");
  std::atomic<std::uint64_t> progress{1};  // frozen
  Watchdog dog(fast_config(path.string()), [&] { return progress.load(); });
  ASSERT_TRUE(eventually([&] {
    return fs::exists(path) &&
           slurp(path).find("\"status\":\"stalled\"") != std::string::npos;
  }));
  EXPECT_NE(slurp(path).find("\"trips\":1"), std::string::npos);
  dog.stop();
  fs::remove(path);
}

TEST(WatchdogTest, StopIsIdempotentAndDestructorStops) {
  std::atomic<std::uint64_t> progress{0};
  {
    Watchdog dog(fast_config(""), [&] { return progress.fetch_add(1) + 1; });
    dog.stop();
    dog.stop();  // second stop must be a no-op, not a double-join
  }               // destructor after explicit stop must also be safe
  {
    Watchdog dog(fast_config(""), [&] { return progress.fetch_add(1) + 1; });
  }  // destructor alone stops the monitor thread
  SUCCEED();
}

}  // namespace
}  // namespace mmw::obs
