// FlightRecorder tests: ring wraparound, multi-thread capture, Chrome-trace
// snapshot shape, dump files, the dump cap, and disarming.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.h"

namespace mmw::obs {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

fs::path fresh_dir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() / (std::string("mmw_flight_") + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::uint64_t count_occurrences(const std::string& hay,
                                const std::string& needle) {
  std::uint64_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(FlightRecorderTest, RecordsAndCountsEvents) {
  FlightRecorder rec(8);
  EXPECT_TRUE(rec.armed());
  EXPECT_EQ(rec.event_count(), 0u);
  rec.record("span.a", "test", 100, 5);
  rec.record("span.b", "test", 110, 7);
  EXPECT_EQ(rec.event_count(), 2u);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(FlightRecorderTest, RingOverwritesOldestAtCapacity) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    rec.record(i % 2 == 0 ? "even" : "odd", "test", i * 100, 1);
  // Capacity bounds the ring: 10 records, only the last 4 survive.
  EXPECT_EQ(rec.event_count(), 4u);

  const std::string json = rec.chrome_json("wraparound");
  // Survivors are i = 6..9: timestamps 600, 700, 800, 900 — oldest first.
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), 4u);
  const auto p600 = json.find("\"ts\":600");
  const auto p700 = json.find("\"ts\":700");
  const auto p800 = json.find("\"ts\":800");
  const auto p900 = json.find("\"ts\":900");
  ASSERT_NE(p600, std::string::npos);
  ASSERT_NE(p700, std::string::npos);
  ASSERT_NE(p800, std::string::npos);
  ASSERT_NE(p900, std::string::npos);
  EXPECT_LT(p600, p700);
  EXPECT_LT(p700, p800);
  EXPECT_LT(p800, p900);
  EXPECT_EQ(json.find("\"ts\":500"), std::string::npos);
}

TEST(FlightRecorderTest, ChromeJsonIsSelfDescribing) {
  FlightRecorder rec(8);
  rec.record("estimation.ml.solve", "estimation", 42, 13);
  const std::string json = rec.chrome_json("unit test: reason");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"estimation.ml.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":13"), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"mmw.flight_recorder/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"unit test: reason\""), std::string::npos);
}

TEST(FlightRecorderTest, EachThreadGetsItsOwnRing) {
  FlightRecorder rec(4);
  rec.record("main.span", "test", 1, 1);
  std::thread worker([&rec] {
    for (int i = 0; i < 6; ++i) rec.record("worker.span", "test", 10 + i, 1);
  });
  worker.join();
  // Main kept 1, the worker's ring wrapped to its own capacity of 4.
  EXPECT_EQ(rec.event_count(), 5u);
  const std::string json = rec.chrome_json("threads");
  EXPECT_EQ(count_occurrences(json, "\"name\":\"worker.span\""), 4u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"main.span\""), 1u);
}

TEST(FlightRecorderTest, DumpWritesSanitizedFileAndCountsUp) {
  const fs::path dir = fresh_dir("dump");
  FlightRecorder rec(8);
  rec.set_dump_directory(dir.string());
  rec.record("span", "test", 5, 2);

  const std::string path = rec.dump("outage burst!");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(rec.dump_count(), 1u);
  // Reason is sanitized into the filename but verbatim inside the document.
  EXPECT_NE(path.find("flight_0_outage_burst_.json"), std::string::npos);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"reason\":\"outage burst!\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"span\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(FlightRecorderTest, DumpsSaturateAtTheCap) {
  const fs::path dir = fresh_dir("cap");
  FlightRecorder rec(4);
  rec.set_dump_directory(dir.string());
  rec.record("span", "test", 1, 1);

  std::uint64_t written = 0;
  for (std::uint64_t i = 0; i < FlightRecorder::kMaxDumps + 5; ++i)
    if (!rec.dump("burst").empty()) ++written;
  EXPECT_EQ(written, FlightRecorder::kMaxDumps);
  EXPECT_EQ(rec.dump_count(), FlightRecorder::kMaxDumps);

  std::uint64_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, FlightRecorder::kMaxDumps);
  fs::remove_all(dir);
}

TEST(FlightRecorderTest, DisarmedRecorderIsInert) {
  const fs::path dir = fresh_dir("disarm");
  FlightRecorder rec(8);
  rec.set_dump_directory(dir.string());
  rec.set_armed(false);
  rec.record("span", "test", 1, 1);
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_EQ(rec.dump("anything"), "");
  EXPECT_EQ(rec.dump_count(), 0u);

  // Re-arming restores recording without losing the registration.
  rec.set_armed(true);
  rec.record("span", "test", 2, 1);
  EXPECT_EQ(rec.event_count(), 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mmw::obs
