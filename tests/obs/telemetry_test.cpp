// TelemetryRecord / TelemetrySink tests: schema shape, the timing-last
// contract that the determinism gate depends on, and NDJSON sink behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace mmw::obs {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TelemetryRecord sample_record() {
  TelemetryRecord r;
  r.epoch = 17;
  r.live_sessions = 100'000;
  r.arrivals = 512;
  r.departures = 498;
  r.aligning_steps = 2048;
  r.tracking_steps = 97'952;
  r.outages = 33;
  r.realignments = 21;
  r.claims = 640;
  r.measurement_slots = 81'920;
  r.estimator_nonconverged = 2;
  r.pool_resident_bytes = 1'234'567;
  r.pool_high_water_bytes = 2'345'678;
  r.loss_count = 97'952;
  r.loss_mean_db = -1.25;
  r.loss_p50_db = -1.5;
  r.loss_p90_db = -0.5;
  r.loss_p99_db = 0.75;
  r.loss_p999_db = 2.5;
  r.loss_max_db = 6.0;
  r.epoch_seconds = 0.123;
  r.epoch_seconds_p50 = 0.1;
  r.epoch_seconds_p99 = 0.3;
  r.pool_busy_us = 4000;
  r.pool_idle_us = 1000;
  r.rss_bytes = 99'999'999;
  r.arena_high_water_bytes = 42'000;
  r.flight_events = 77;
  return r;
}

TEST(TelemetryRecordTest, JsonLeadsWithSchemaAndGroupsFields) {
  const std::string json = sample_record().to_json();
  EXPECT_EQ(json.rfind("{\"schema\":\"mmw.telemetry/1\",\"epoch\":17,", 0),
            0u);
  EXPECT_NE(json.find("\"counters\":{\"live_sessions\":100000,"),
            std::string::npos);
  EXPECT_NE(json.find("\"estimator_nonconverged\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"memory\":{\"pool_resident_bytes\":1234567,"
                      "\"pool_high_water_bytes\":2345678}"),
            std::string::npos);
  EXPECT_NE(json.find("\"loss_db\":{\"count\":97952,\"mean\":-1.25,"),
            std::string::npos);
  EXPECT_NE(json.find("\"p999\":2.5,\"max\":6}"), std::string::npos);
  EXPECT_NE(json.find("\"timing\":{\"epoch_seconds\":0.123,"),
            std::string::npos);
  EXPECT_NE(json.find("\"flight_events\":77}"), std::string::npos);
}

TEST(TelemetryRecordTest, TimingIsTheLastKey) {
  const std::string json = sample_record().to_json(true);
  const auto pos = json.find(",\"timing\":{");
  ASSERT_NE(pos, std::string::npos);
  // The timing object runs to the end of the record: "...}}" closes timing
  // and then the record itself, with no sibling key in between.
  EXPECT_EQ(json.substr(json.size() - 2), "}}");
  const std::string tail = json.substr(pos + 1);
  EXPECT_EQ(tail.find("},\""), std::string::npos)
      << "a key follows the timing object";
}

TEST(TelemetryRecordTest, TruncatingAtTimingEqualsExcludingIt) {
  // THE contract the CI determinism gate and telemetry_report.py rely on:
  // stripping wall-time is a string truncation, no JSON parser needed.
  const TelemetryRecord r = sample_record();
  const std::string with = r.to_json(true);
  const std::string without = r.to_json(false);
  const auto pos = with.find(",\"timing\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(with.substr(0, pos) + "}", without);
}

TEST(TelemetryRecordTest, TimingDoesNotLeakIntoDeterministicPrefix) {
  TelemetryRecord a = sample_record();
  TelemetryRecord b = sample_record();
  // Perturb ONLY timing fields: the deterministic prefix must not move.
  b.epoch_seconds = 9.87;
  b.pool_busy_us = 1;
  b.pool_idle_us = 999'999;
  b.rss_bytes = 1;
  b.arena_high_water_bytes = 0;
  b.flight_events = 0;
  EXPECT_NE(a.to_json(true), b.to_json(true));
  EXPECT_EQ(a.to_json(false), b.to_json(false));
}

TEST(TelemetrySinkTest, WritesOneLinePerRecordAndCreatesParents) {
  const fs::path dir =
      fs::temp_directory_path() / "mmw_telemetry_test" / "nested";
  fs::remove_all(dir.parent_path());
  const fs::path path = dir / "epochs.ndjson";

  TelemetrySink sink;
  ASSERT_TRUE(sink.open(path.string()));
  EXPECT_TRUE(sink.is_open());
  TelemetryRecord r = sample_record();
  sink.write(r);
  r.epoch = 18;
  sink.write(r);
  EXPECT_EQ(sink.records_written(), 2u);
  sink.close();
  EXPECT_FALSE(sink.is_open());

  const std::string body = slurp(path);
  std::vector<std::string> lines;
  for (std::size_t start = 0; start < body.size();) {
    const auto nl = body.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "file must end with a newline";
    lines.push_back(body.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("{\"schema\":\"mmw.telemetry/1\",\"epoch\":17,", 0),
            0u);
  EXPECT_EQ(lines[1].rfind("{\"schema\":\"mmw.telemetry/1\",\"epoch\":18,", 0),
            0u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
  fs::remove_all(dir.parent_path());
}

TEST(TelemetrySinkTest, ClosedSinkIsANoOp) {
  TelemetrySink sink;
  EXPECT_FALSE(sink.is_open());
  sink.write(sample_record());  // must not crash
  EXPECT_EQ(sink.records_written(), 0u);
  sink.close();  // idempotent
}

TEST(TelemetrySinkTest, OpenFailureLeavesSinkClosed) {
  TelemetrySink sink;
  // A path whose parent is a FILE cannot be created.
  const fs::path block =
      fs::temp_directory_path() / "mmw_telemetry_block_file";
  {
    std::ofstream out(block);
    out << "x";
  }
  EXPECT_FALSE(sink.open((block / "child" / "t.ndjson").string()));
  EXPECT_FALSE(sink.is_open());
  fs::remove(block);
}

TEST(TelemetrySinkTest, ReopenTruncates) {
  const fs::path path =
      fs::temp_directory_path() / "mmw_telemetry_reopen.ndjson";
  TelemetrySink sink;
  ASSERT_TRUE(sink.open(path.string()));
  sink.write(sample_record());
  sink.write(sample_record());
  ASSERT_TRUE(sink.open(path.string()));  // open() closes and truncates
  sink.write(sample_record());
  sink.close();
  const std::string body = slurp(path);
  EXPECT_EQ(std::count(body.begin(), body.end(), '\n'), 1);
  fs::remove(path);
}

}  // namespace
}  // namespace mmw::obs
