// Tests for the instrumentation layer: registry semantics (bucket edges,
// merge order, reset, kind pinning), the enabled() gate, concurrent
// recording (exercised under TSan in CI), and the trace collector's Chrome
// JSON export.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmw::obs {
namespace {

/// Every test runs with instrumentation on and restores the previous state
/// (the suite default is off, matching the library default).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
  }
  void TearDown() override { set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsTest, LinearAndExponentialBucketConstruction) {
  const auto lin = HistogramBuckets::linear(1.0, 1.0, 4);
  EXPECT_EQ(lin.upper_bounds, (std::vector<real>{1.0, 2.0, 3.0, 4.0}));
  const auto exp = HistogramBuckets::exponential(1.0, 2.0, 4);
  EXPECT_EQ(exp.upper_bounds, (std::vector<real>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(HistogramBuckets::linear(0.0, 0.0, 3), precondition_error);
  EXPECT_THROW(HistogramBuckets::exponential(1.0, 1.0, 3),
               precondition_error);
}

TEST_F(ObsTest, HistogramBucketEdgesAreLessOrEqual) {
  Registry reg;
  Histogram h = reg.histogram("edges", HistogramBuckets{{1.0, 2.0, 4.0}});
  // Prometheus "le" semantics: a sample on the boundary lands in that
  // bucket, not the next one.
  h.record(0.5);  // bucket 0
  h.record(1.0);  // bucket 0 (boundary)
  h.record(1.5);  // bucket 1
  h.record(2.0);  // bucket 1 (boundary)
  h.record(4.0);  // bucket 2 (boundary)
  h.record(4.1);  // overflow
  h.record(-3.0);  // bucket 0 (below range still counts as <= 1)
  const auto snap = reg.snapshot().histograms.at("edges");
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{3, 2, 1, 1}));
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1 - 3.0);
}

TEST_F(ObsTest, DisabledRecordingIsANoOp) {
  Registry reg;
  Counter c = reg.counter("c");
  Gauge g = reg.gauge("g");
  Histogram h = reg.histogram("h", HistogramBuckets::linear(1.0, 1.0, 2));
  set_enabled(false);
  c.add(5);
  g.set(3.0);
  h.record(1.0);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c").value, 0u);
  EXPECT_EQ(snap.gauges.at("g").count, 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  set_enabled(true);
  c.add(2);
  EXPECT_EQ(reg.snapshot().counters.at("c").value, 2u);
}

TEST_F(ObsTest, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_NO_THROW(c.add());
  EXPECT_NO_THROW(g.set(1.0));
  EXPECT_NO_THROW(h.record(1.0));
}

TEST_F(ObsTest, GaugeTracksAggregatesAndLast) {
  Registry reg;
  Gauge g = reg.gauge("loss");
  g.set(3.0);
  g.set(1.0);
  g.set(2.0);
  const auto snap = reg.snapshot().gauges.at("loss");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.last, 2.0);
  EXPECT_DOUBLE_EQ(snap.minimum, 1.0);
  EXPECT_DOUBLE_EQ(snap.maximum, 3.0);
  EXPECT_DOUBLE_EQ(snap.sum, 6.0);
}

TEST_F(ObsTest, NameKeepsItsKind) {
  Registry reg;
  (void)reg.counter("metric");
  EXPECT_THROW((void)reg.gauge("metric"), precondition_error);
  EXPECT_THROW(
      (void)reg.histogram("metric", HistogramBuckets::linear(1.0, 1.0, 2)),
      precondition_error);
  // Same kind re-registration returns a working handle for the same cell.
  Counter a = reg.counter("metric");
  Counter b = reg.counter("metric");
  a.add();
  b.add();
  EXPECT_EQ(reg.snapshot().counters.at("metric").value, 2u);
}

TEST_F(ObsTest, HistogramBucketsFixedAtFirstRegistration) {
  Registry reg;
  Histogram first =
      reg.histogram("h", HistogramBuckets{{1.0, 2.0}});
  Histogram second =
      reg.histogram("h", HistogramBuckets{{10.0, 20.0, 30.0}});
  first.record(1.5);
  second.record(1.5);  // must use the {1, 2} layout, not {10, 20, 30}
  const auto snap = reg.snapshot().histograms.at("h");
  EXPECT_EQ(snap.upper_bounds, (std::vector<real>{1.0, 2.0}));
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{0, 2, 0}));
}

TEST_F(ObsTest, CountsMergeAcrossThreads) {
  Registry reg;
  Counter c = reg.counter("work");
  Histogram h = reg.histogram("sizes", HistogramBuckets::linear(1.0, 1.0, 4));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      set_thread_ordinal(static_cast<std::uint64_t>(t + 1));
      for (int i = 0; i < 250; ++i) {
        c.add();
        h.record(static_cast<real>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("work").value, 1000u);
  EXPECT_EQ(snap.histograms.at("sizes").count, 1000u);
  EXPECT_EQ(snap.histograms.at("sizes").counts,
            (std::vector<std::uint64_t>{250, 250, 250, 250, 0}));
}

TEST_F(ObsTest, GaugeLastResolvesByShardOrderNotUpdateOrder) {
  Registry reg;
  Gauge g = reg.gauge("last");
  // The merged `last` is last-write-wins over the DETERMINISTIC (ordinal,
  // sequence) shard order, NOT wall-clock update order: the ordinal-1
  // worker's value wins even though the main thread (ordinal 0) set the
  // gauge after it — re-running with any interleaving gives the same
  // answer, which is the PR-4 "gauge caveat" resolved.
  std::thread worker([&] {
    set_thread_ordinal(1);
    g.set(10.0);
  });
  worker.join();
  g.set(42.0);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("last").last, 10.0);
  // Order-independent aggregates still see both writes.
  EXPECT_EQ(snap.gauges.at("last").count, 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("last").minimum, 10.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("last").maximum, 42.0);
}

TEST_F(ObsTest, GaugeLastWithinOneThreadIsProgramOrder) {
  Registry reg;
  Gauge g = reg.gauge("seq");
  g.set(1.0);
  g.set(7.0);
  g.set(3.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("seq").last, 3.0);
}

TEST_F(ObsTest, GaugeLastSkipsShardsThatNeverSetIt) {
  Registry reg;
  Gauge g = reg.gauge("sparse");
  Counter c = reg.counter("touch");
  // The ordinal-2 thread registers a shard (via the counter) but never
  // sets the gauge; the ordinal-1 thread's value must still win over the
  // main thread's, and the empty higher-ordered shard must not zero it.
  std::thread t1([&] {
    set_thread_ordinal(1);
    g.set(5.0);
  });
  t1.join();
  std::thread t2([&] {
    set_thread_ordinal(2);
    c.add();
  });
  t2.join();
  g.set(9.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("sparse").last, 5.0);
}

TEST_F(ObsTest, ConcurrentRecordingWithSnapshots) {
  // Recorders on several threads race snapshot() and reset() on the main
  // thread; run under TSan in CI. Totals are checked only for the final
  // (post-join) snapshot.
  Registry reg;
  Counter c = reg.counter("hot");
  Gauge g = reg.gauge("g");
  Histogram h = reg.histogram("h", HistogramBuckets::exponential(1.0, 2.0, 8));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      set_thread_ordinal(static_cast<std::uint64_t>(t + 1));
      for (int i = 0; i < 2000; ++i) {
        c.add();
        g.set(static_cast<real>(i));
        h.record(static_cast<real>(i % 37));
      }
    });
  }
  for (int k = 0; k < 50; ++k) (void)reg.snapshot();
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hot").value, 8000u);
  EXPECT_EQ(snap.gauges.at("g").count, 8000u);
  EXPECT_EQ(snap.histograms.at("h").count, 8000u);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsDefinitions) {
  Registry reg;
  Counter c = reg.counter("c");
  Gauge g = reg.gauge("g");
  c.add(7);
  g.set(1.0);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c").value, 0u);
  EXPECT_EQ(snap.gauges.at("g").count, 0u);
  c.add();  // handles stay valid after reset
  EXPECT_EQ(reg.snapshot().counters.at("c").value, 1u);
}

TEST_F(ObsTest, SnapshotListsNeverFiredMetrics) {
  Registry reg;
  (void)reg.counter("silent");
  (void)reg.histogram("empty", HistogramBuckets::linear(1.0, 1.0, 3));
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.contains("silent"));
  ASSERT_TRUE(snap.histograms.contains("empty"));
  EXPECT_EQ(snap.histograms.at("empty").counts.size(), 4u);
}

TEST_F(ObsTest, SnapshotJsonIsStable) {
  Registry reg;
  reg.counter("b.count").add(3);
  reg.gauge("a.gauge").set(1.5);
  reg.histogram("c.hist", HistogramBuckets{{1.0, 2.0}}).record(1.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_EQ(json, reg.snapshot().to_json());  // deterministic rendering
  EXPECT_NE(json.find("\"b.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[1,0,0]"), std::string::npos);
}

// ------------------------------------------------------------- tracing ----

/// Restores capture state and clears events; tracing tests share the global
/// collector (TraceScope is hard-wired to it).
class TraceTest : public ObsTest {
 protected:
  void SetUp() override {
    ObsTest::SetUp();
    TraceCollector::global().clear();
    TraceCollector::global().set_capturing(true);
  }
  void TearDown() override {
    TraceCollector::global().set_capturing(false);
    TraceCollector::global().clear();
    ObsTest::TearDown();
  }
};

TEST_F(TraceTest, ScopeRecordsCompleteEventWithArgs) {
  {
    TraceScope scope("unit.test.span", "test");
    scope.arg("k", 3.0);
    EXPECT_TRUE(scope.active());
  }
  EXPECT_EQ(TraceCollector::global().event_count(), 1u);
  const std::string json = TraceCollector::global().chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":3"), std::string::npos);
}

TEST_F(TraceTest, MacroAndCounterAndInstant) {
  {
    MMW_TRACE_SCOPE("unit.macro.span");
    TraceCollector::global().counter("unit.counter", 7.5);
    TraceCollector::global().instant("unit.instant");
  }
  EXPECT_EQ(TraceCollector::global().event_count(), 3u);
  const std::string json = TraceCollector::global().chrome_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7.5"), std::string::npos);
}

TEST_F(TraceTest, InactiveWithoutCaptureOptIn) {
  TraceCollector::global().set_capturing(false);
  {
    TraceScope scope("should.not.record");
    EXPECT_FALSE(scope.active());
  }
  EXPECT_EQ(TraceCollector::global().event_count(), 0u);
}

TEST_F(TraceTest, InactiveWhenObsDisabled) {
  set_enabled(false);
  {
    MMW_TRACE_SCOPE("should.not.record");
    TraceCollector::global().counter("nope", 1.0);
  }
  EXPECT_EQ(TraceCollector::global().event_count(), 0u);
}

TEST_F(TraceTest, ClearDropsEvents) {
  { MMW_TRACE_SCOPE("x"); }
  EXPECT_GT(TraceCollector::global().event_count(), 0u);
  TraceCollector::global().clear();
  EXPECT_EQ(TraceCollector::global().event_count(), 0u);
}

}  // namespace
}  // namespace mmw::obs
