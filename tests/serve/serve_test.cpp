// ServingEngine (src/serve/): the determinism and fixed-memory contracts
// of the city-scale serving runtime.
//
//  - Thread-count invariance: the rendered per-epoch CSV is byte-identical
//    for --threads 1/2/4/auto (the fig5–8 contract extended to serving).
//  - Obs invariance: instrumentation on/off never changes results.
//  - Churn invariance: arrivals and departures of OTHER sessions never
//    perturb a surviving session's resident state — a session's trajectory
//    is a pure function of (seed, site, user_key, epoch).
//  - Alignment lifecycle: sessions claim pairs after align_epochs slots,
//    loss is nonnegative, blockage drives outages and re-alignment.
#include "serve/serve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/obs.h"

namespace mmw::serve {
namespace {

// Tiny deployment: TX 2×1 (M = 2), RX 2×2 (N = 4), 4 hex sites — big
// enough to exercise multi-site sharding and churn, small enough that the
// whole suite re-runs the engine many times in well under a second each.
ServeConfig tiny_config() {
  ServeConfig cfg;
  cfg.scenario.channel = sim::ChannelKind::kSinglePath;
  cfg.scenario.tx_grid_x = 2;
  cfg.scenario.tx_grid_y = 1;
  cfg.scenario.rx_grid_x = 2;
  cfg.scenario.rx_grid_y = 2;
  cfg.scenario.fades_per_measurement = 2;
  cfg.scenario.gamma = 1000.0;  // cell-edge users stay alignable
  cfg.scenario.seed = 7;
  cfg.scenario.threads = 1;
  cfg.topology.cells = 4;
  cfg.initial_sessions = 120;
  cfg.epochs = 6;
  cfg.align_epochs = 2;
  cfg.probes_per_slot = 3;
  cfg.session_block = 16;  // several slabs per site → real shard fan-out
  return cfg;
}

std::string run_csv(ServeConfig cfg, index_t threads) {
  cfg.scenario.threads = threads;
  ServingEngine engine(cfg);
  return render_serving_csv(engine.run().epochs);
}

TEST(ServingEngine, CsvIsByteIdenticalAcrossThreadCounts) {
  const ServeConfig cfg = tiny_config();
  const std::string serial = run_csv(cfg, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_csv(cfg, 2));
  EXPECT_EQ(serial, run_csv(cfg, 4));
  EXPECT_EQ(serial, run_csv(cfg, 0));  // auto
}

TEST(ServingEngine, CsvIsByteIdenticalAcrossThreadCountsUnderChurn) {
  ServeConfig cfg = tiny_config();
  cfg.arrival_rate = 3.0;
  cfg.mean_sojourn_epochs = 4.0;
  const std::string serial = run_csv(cfg, 1);
  EXPECT_EQ(serial, run_csv(cfg, 2));
  EXPECT_EQ(serial, run_csv(cfg, 4));
}

TEST(ServingEngine, ObsOnOffNeverChangesResults) {
  const ServeConfig cfg = tiny_config();
  const bool was = obs::enabled();
  obs::set_enabled(true);
  const std::string with_obs = run_csv(cfg, 2);
  obs::set_enabled(false);
  const std::string without = run_csv(cfg, 2);
  obs::set_enabled(was);
  EXPECT_EQ(with_obs, without);
}

TEST(ServingEngine, RerunIsExactlyReproducible) {
  const ServeConfig cfg = tiny_config();
  ServingEngine a(cfg);
  ServingEngine b(cfg);
  const ServeResult ra = a.run();
  const ServeResult rb = b.run();
  EXPECT_EQ(ra.sessions_stepped, rb.sessions_stepped);
  EXPECT_EQ(ra.peak_live_sessions, rb.peak_live_sessions);
  EXPECT_EQ(render_serving_csv(ra.epochs), render_serving_csv(rb.epochs));
}

// The churn-invariance contract: run a closed population next to an open
// one (same seed, same sojourns). Initial-cohort sessions that survive in
// both must hold BIT-IDENTICAL resident state — neighbours arriving or
// departing around them contributes nothing to their trajectory.
TEST(ServingEngine, ChurnNeverPerturbsSurvivingSessions) {
  ServeConfig closed = tiny_config();
  closed.mean_sojourn_epochs = 8.0;  // same identity-stream draws as open
  ServeConfig open = closed;
  open.arrival_rate = 5.0;

  ServingEngine a(closed);
  ServingEngine b(open);
  a.run();
  b.run();
  EXPECT_GT(b.peak_live_sessions(), a.peak_live_sessions());  // churn happened

  const index_t per_site = closed.initial_sessions / 4;
  index_t compared = 0;
  for (index_t site = 0; site < a.n_sites(); ++site) {
    for (std::uint64_t key = 0; key < per_site; ++key) {
      const UserSession* sa = a.find_session(site, key);
      const UserSession* sb = b.find_session(site, key);
      // Same sojourn draws → departed in one iff departed in the other.
      ASSERT_EQ(sa == nullptr, sb == nullptr);
      if (sa == nullptr) continue;
      EXPECT_EQ(0, std::memcmp(sa, sb, sizeof(UserSession)));
      ++compared;
    }
  }
  EXPECT_GT(compared, 50u);  // the comparison actually covered the cohort
}

TEST(ServingEngine, SessionsClaimPairsAndTrack) {
  ServeConfig cfg = tiny_config();
  ServingEngine engine(cfg);
  const ServeResult r = engine.run();

  // After align_epochs slots every immortal session is tracking.
  index_t tracking = 0;
  engine.for_each_session([&](index_t, const UserSession& s) {
    if (s.aligning == 0) {
      ++tracking;
      EXPECT_GT(s.claimed_gain, 0.0f);
      EXPECT_GE(s.optimal_gain, s.claimed_gain);  // oracle bound ⇒ loss ≥ 0
      EXPECT_GE(s.trained_energy, 0.0f);
      EXPECT_GT(s.rank, 0);
    }
  });
  EXPECT_GT(tracking, 0u);

  // Per-epoch ledger: epoch 0 admits everyone; alignment spends exactly
  // align_epochs slots; afterwards the population tracks.
  ASSERT_EQ(r.epochs.size(), cfg.epochs);
  EXPECT_EQ(r.epochs.front().arrivals, cfg.initial_sessions);
  EXPECT_EQ(r.epochs.front().aligning_steps, cfg.initial_sessions);
  EXPECT_GT(r.epochs.back().tracking_steps, 0u);
  EXPECT_GT(r.epochs.back().loss_samples, 0u);
  EXPECT_GE(r.epochs.back().mean_loss_db, 0.0);
}

TEST(ServingEngine, BlockageDrivesOutagesAndRealignment) {
  ServeConfig cfg = tiny_config();
  cfg.epochs = 10;
  cfg.blockage_probability = 0.4;
  ServingEngine engine(cfg);
  const ServeResult r = engine.run();
  std::uint64_t outages = 0;
  for (const EpochReport& e : r.epochs) outages += e.outages;
  EXPECT_GT(outages, 0u);
  index_t realigned = 0;
  engine.for_each_session([&](index_t, const UserSession& s) {
    if (s.realigns > 0) ++realigned;
  });
  EXPECT_GT(realigned, 0u);
}

TEST(ServingEngine, ResidentMemoryIsBudgetedAndMonotone) {
  ServeConfig cfg = tiny_config();
  cfg.arrival_rate = 4.0;
  cfg.mean_sojourn_epochs = 3.0;
  ServingEngine engine(cfg);
  const ServeResult r = engine.run();
  EXPECT_GT(r.resident_bytes, 0u);
  EXPECT_GE(r.high_water_bytes, r.resident_bytes);
  // The accounting at least covers every peak-live session's cell, and
  // slab quantization bounds it above by whole slabs.
  EXPECT_GE(r.high_water_bytes,
            r.peak_live_sessions * sizeof(UserSession));
  EXPECT_LE(r.high_water_bytes,
            (r.peak_live_sessions + engine.n_sites() * cfg.session_block) *
                (sizeof(UserSession) + 16));
}

TEST(ServingEngine, EpochReportsAreStreamedNotResident) {
  // O(sessions + buckets) memory: the per-epoch report count equals the
  // epoch count and session count never inflates it.
  ServeConfig cfg = tiny_config();
  cfg.epochs = 12;
  ServingEngine engine(cfg);
  const ServeResult r = engine.run();
  EXPECT_EQ(r.epochs.size(), 12u);
  std::uint64_t stepped = 0;
  for (const EpochReport& e : r.epochs) stepped += e.live_sessions;
  EXPECT_EQ(stepped, r.sessions_stepped);
}

// ---------------------------------------------------------------------------
// Telemetry plane (DESIGN.md §14): NDJSON determinism, quantile sanity,
// anomaly-triggered flight dumps, and the watchdog.

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

fs::path telemetry_dir() {
  const fs::path dir = fs::temp_directory_path() / "mmw_serve_telemetry";
  fs::create_directories(dir);
  return dir;
}

/// Applies the determinism contract: drops each record's trailing "timing"
/// object by string truncation (it is guaranteed to be the last key).
std::string strip_timing(const std::string& ndjson) {
  std::string out;
  std::size_t start = 0;
  while (start < ndjson.size()) {
    auto nl = ndjson.find('\n', start);
    if (nl == std::string::npos) nl = ndjson.size();
    std::string line = ndjson.substr(start, nl - start);
    const auto pos = line.find(",\"timing\":");
    if (pos != std::string::npos) line = line.substr(0, pos) + "}";
    out += line;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

TEST(ServingTelemetry, NdjsonCountersAreByteIdenticalAcrossThreadCounts) {
  const fs::path dir = telemetry_dir();
  ServeConfig cfg = tiny_config();
  cfg.arrival_rate = 3.0;
  cfg.mean_sojourn_epochs = 4.0;
  cfg.blockage_probability = 0.2;

  std::vector<std::string> stripped;
  for (const index_t threads : {1, 2, 4, 0}) {
    const fs::path path =
        dir / ("epochs_t" + std::to_string(threads) + ".ndjson");
    cfg.scenario.threads = threads;
    cfg.telemetry.ndjson_path = path.string();
    ServingEngine engine(cfg);
    const ServeResult r = engine.run();
    EXPECT_EQ(r.telemetry_records, cfg.epochs);
    const std::string body = slurp(path);
    // Every line is one record with the schema marker and a timing object.
    EXPECT_EQ(static_cast<std::uint64_t>(
                  std::count(body.begin(), body.end(), '\n')),
              cfg.epochs);
    EXPECT_EQ(body.rfind("{\"schema\":\"mmw.telemetry/1\"", 0), 0u);
    EXPECT_NE(body.find(",\"timing\":{"), std::string::npos);
    stripped.push_back(strip_timing(body));
    fs::remove(path);
  }
  // The deterministic prefix (counters, memory, loss quantiles) must be
  // byte-identical at any thread count; only "timing" may differ.
  EXPECT_EQ(stripped[0], stripped[1]);
  EXPECT_EQ(stripped[0], stripped[2]);
  EXPECT_EQ(stripped[0], stripped[3]);
}

TEST(ServingTelemetry, TelemetryExportNeverChangesResults) {
  const fs::path path = telemetry_dir() / "observe_only.ndjson";
  ServeConfig cfg = tiny_config();
  const std::string bare = run_csv(cfg, 2);
  cfg.telemetry.ndjson_path = path.string();
  // Telemetry is observe-only: enabling the sink cannot move a single byte
  // of the scientific output.
  EXPECT_EQ(bare, run_csv(cfg, 2));
  fs::remove(path);
}

TEST(ServingTelemetry, LossQuantilesAreOrderedPerEpochAndRunLevel) {
  ServeConfig cfg = tiny_config();
  cfg.epochs = 10;
  cfg.blockage_probability = 0.3;
  ServingEngine engine(cfg);
  const ServeResult r = engine.run();

  for (const EpochReport& e : r.epochs) {
    if (e.loss_samples == 0) continue;
    EXPECT_LE(e.p50_loss_db, e.p90_loss_db);
    EXPECT_LE(e.p90_loss_db, e.p99_loss_db);
    EXPECT_LE(e.p99_loss_db, e.p999_loss_db);
    EXPECT_LE(e.p999_loss_db, e.max_loss_db);
    EXPECT_GE(e.p50_loss_db, 0.0);  // oracle bound ⇒ loss ≥ 0
    EXPECT_GE(e.mean_loss_db, 0.0);
  }
  ASSERT_GT(r.loss_samples, 0u);
  EXPECT_LE(r.loss_p50_db, r.loss_p90_db);
  EXPECT_LE(r.loss_p90_db, r.loss_p99_db);
  EXPECT_LE(r.loss_p99_db, r.loss_p999_db);
  EXPECT_GE(r.epoch_seconds_p99, r.epoch_seconds_p50);
  EXPECT_GT(r.epoch_seconds_p50, 0.0);
}

TEST(ServingTelemetry, OutageBurstDumpsFlightRecorderOnce) {
  const fs::path dir = telemetry_dir() / "burst_dumps";
  fs::remove_all(dir);
  fs::create_directories(dir);
  obs::FlightRecorder::global().set_dump_directory(dir.string());

  ServeConfig cfg = tiny_config();
  cfg.epochs = 10;
  cfg.blockage_probability = 0.4;  // reliably produces outages
  cfg.telemetry.outage_burst_dump_threshold = 1;
  const std::uint64_t before = obs::FlightRecorder::global().dump_count();
  ServingEngine engine(cfg);
  engine.run();
  // Latched: the first burst dumps, later bursts in the same run do not.
  EXPECT_EQ(obs::FlightRecorder::global().dump_count(), before + 1);

  bool found = false;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().filename().string().find("outage_burst") !=
        std::string::npos)
      found = true;
  EXPECT_TRUE(found);
  obs::FlightRecorder::global().set_dump_directory("bench_results");
  fs::remove_all(dir);
}

TEST(ServingTelemetry, InjectedStallTripsWatchdog) {
  const fs::path dir = telemetry_dir() / "stall_dumps";
  fs::remove_all(dir);
  fs::create_directories(dir);
  obs::FlightRecorder::global().set_dump_directory(dir.string());
  const fs::path health = dir / "health.json";

  ServeConfig cfg = tiny_config();
  cfg.scenario.threads = 1;
  cfg.telemetry.watchdog = true;
  cfg.telemetry.health_path = health.string();
  cfg.telemetry.watchdog_poll_seconds = 0.005;
  cfg.telemetry.watchdog_min_stall_seconds = 0.05;
  cfg.telemetry.watchdog_stall_multiplier = 2.0;
  // The test hook: a pure wall-clock sleep in epoch 3 — no Rng, no state,
  // so results stay deterministic while the epoch loop visibly freezes.
  cfg.telemetry.stall_test_seconds = 0.5;
  cfg.telemetry.stall_test_epoch = 3;

  {
    ServingEngine engine(cfg);
    const ServeResult r = engine.run();
    EXPECT_TRUE(r.watchdog_tripped);
    ASSERT_NE(engine.watchdog(), nullptr);
    EXPECT_GE(engine.watchdog()->trips(), 1u);
    ASSERT_TRUE(fs::exists(health));
    EXPECT_NE(slurp(health).find("\"schema\":\"mmw.health/1\""),
              std::string::npos);
  }
  // Engine teardown stops the watchdog, which leaves a terminal document.
  const std::string body = slurp(health);
  EXPECT_NE(body.find("\"status\":\"stopped\""), std::string::npos);
  EXPECT_NE(body.find("\"trips\":"), std::string::npos);
  obs::FlightRecorder::global().set_dump_directory("bench_results");
  fs::remove_all(dir);
}

TEST(ServingTelemetry, HealthyRunNeverTrips) {
  const fs::path health = telemetry_dir() / "healthy.health.json";
  ServeConfig cfg = tiny_config();
  cfg.telemetry.watchdog = true;
  cfg.telemetry.health_path = health.string();
  cfg.telemetry.watchdog_poll_seconds = 0.005;  // poll a lot; still no trip
  ServingEngine engine(cfg);
  const ServeResult r = engine.run();
  EXPECT_FALSE(r.watchdog_tripped);
  ASSERT_NE(engine.watchdog(), nullptr);
  EXPECT_EQ(engine.watchdog()->trips(), 0u);
  EXPECT_FALSE(engine.watchdog()->stalled());
  fs::remove(health);
}

}  // namespace
}  // namespace mmw::serve
