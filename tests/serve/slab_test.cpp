// SessionPool (serve/slab.h): slot reuse, liveness accounting, and the
// monotone byte accounting the E9 fixed-memory evidence is built from.
#include "serve/slab.h"

#include <gtest/gtest.h>

#include <vector>

namespace mmw::serve {
namespace {

TEST(SessionPool, AllocatesAscendingWithinAFreshSlab) {
  SessionPool pool(4);
  EXPECT_EQ(pool.n_slabs(), 0u);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(pool.allocate(), i);
  EXPECT_EQ(pool.n_slabs(), 1u);
  EXPECT_EQ(pool.allocate(), 4u);  // second slab
  EXPECT_EQ(pool.n_slabs(), 2u);
  EXPECT_EQ(pool.live_count(), 5u);
}

TEST(SessionPool, ReleasedSlotsAreReusedLifoBeforeGrowth) {
  SessionPool pool(4);
  for (index_t i = 0; i < 4; ++i) pool.allocate();
  pool.release(1);
  pool.release(3);
  EXPECT_EQ(pool.live_count(), 2u);
  EXPECT_EQ(pool.allocate(), 3u);  // most recently released first
  EXPECT_EQ(pool.allocate(), 1u);
  EXPECT_EQ(pool.n_slabs(), 1u);  // no growth while the free list serves
}

TEST(SessionPool, AllocateValueInitializesRecycledSlots) {
  SessionPool pool(2);
  const index_t slot = pool.allocate();
  pool[slot].user_key = 42;
  pool[slot].rank = 3;
  pool.release(slot);
  const index_t again = pool.allocate();
  ASSERT_EQ(again, slot);
  EXPECT_EQ(pool[again].user_key, 0u);
  EXPECT_EQ(pool[again].rank, 0u);
  EXPECT_EQ(pool[again].trained_energy, -1.0f);  // default field values
  EXPECT_EQ(pool[again].departure_epoch, kNoDeparture);
}

TEST(SessionPool, LiveIterationIsAscendingAndSkipsDead) {
  SessionPool pool(4);
  for (index_t i = 0; i < 7; ++i) pool.allocate();
  pool.release(2);
  pool.release(5);
  std::vector<index_t> seen;
  pool.for_each_live([&](index_t slot, const UserSession&) {
    seen.push_back(slot);
  });
  const std::vector<index_t> expected{0, 1, 3, 4, 6};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(pool.live_in_slab(0), 3u);
  EXPECT_EQ(pool.live_in_slab(1), 2u);
}

TEST(SessionPool, ByteAccountingIsMonotoneAndChurnStable) {
  SessionPool pool(8);
  for (index_t i = 0; i < 16; ++i) pool.allocate();
  const std::size_t grown = pool.resident_bytes();
  // Cells + liveness bytes for two slabs are the dominant term.
  EXPECT_GE(grown, 2 * 8 * (sizeof(UserSession) + 1));
  EXPECT_GE(pool.high_water_bytes(), grown);
  // Churn within capacity must not move resident bytes at all: that is
  // the zero-steady-state-heap-traffic contract.
  for (index_t round = 0; round < 3; ++round) {
    for (index_t i = 0; i < 8; ++i) pool.release(i);
    for (index_t i = 0; i < 8; ++i) pool.allocate();
  }
  EXPECT_EQ(pool.resident_bytes(), grown);
  EXPECT_EQ(pool.n_slabs(), 2u);
}

}  // namespace
}  // namespace mmw::serve
