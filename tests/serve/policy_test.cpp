// ServeConfig::probe_policy (the PR-10 wiring of track/policy.h into the
// serving engine's alignment slots): the default cursor sweep must stay
// byte-identical to the legacy behavior, and every policy must uphold the
// engine's thread-count determinism contract.
#include <gtest/gtest.h>

#include <string>

#include "serve/serve.h"
#include "track/policy.h"

namespace mmw::serve {
namespace {

ServeConfig policy_config(track::ProbePolicy policy) {
  ServeConfig cfg;
  cfg.scenario.channel = sim::ChannelKind::kSinglePath;
  cfg.scenario.tx_grid_x = 2;
  cfg.scenario.tx_grid_y = 1;
  cfg.scenario.rx_grid_x = 2;
  cfg.scenario.rx_grid_y = 2;
  cfg.scenario.fades_per_measurement = 2;
  cfg.scenario.gamma = 1000.0;
  cfg.scenario.seed = 7;
  cfg.scenario.threads = 1;
  cfg.topology.cells = 4;
  cfg.initial_sessions = 96;
  cfg.epochs = 6;
  cfg.align_epochs = 2;
  cfg.probes_per_slot = 3;
  cfg.session_block = 16;
  cfg.probe_policy = policy;
  return cfg;
}

std::string run_csv(ServeConfig cfg, index_t threads) {
  cfg.scenario.threads = threads;
  ServingEngine engine(cfg);
  return render_serving_csv(engine.run().epochs);
}

TEST(ServePolicyTest, DefaultIsTheLegacyCursorSweep) {
  // The config default must be the byte-compatible PR-9 path.
  ServeConfig cfg;
  EXPECT_EQ(cfg.probe_policy, track::ProbePolicy::kCursorSweep);
}

TEST(ServePolicyTest, EveryPolicyIsThreadCountDeterministic) {
  for (const track::ProbePolicy policy :
       {track::ProbePolicy::kCursorSweep, track::ProbePolicy::kNeighborhood,
        track::ProbePolicy::kBanditUcb}) {
    const ServeConfig cfg = policy_config(policy);
    const std::string serial = run_csv(cfg, 1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, run_csv(cfg, 2));
    EXPECT_EQ(serial, run_csv(cfg, 4));
  }
}

TEST(ServePolicyTest, PoliciesActuallyChangeProbeSelection) {
  // Sanity that the knob is wired through: the spread policy explores a
  // different RX sequence than the cursor sweep, which shows up in the
  // deterministic per-epoch CSV on a config where exploration matters
  // (more RX beams than probes per slot).
  ServeConfig cursor = policy_config(track::ProbePolicy::kCursorSweep);
  cursor.scenario.rx_grid_x = 4;  // N = 8 ≫ probes_per_slot
  ServeConfig spread = cursor;
  spread.probe_policy = track::ProbePolicy::kBanditUcb;
  EXPECT_NE(run_csv(cursor, 1), run_csv(spread, 1));
}

TEST(ServePolicyTest, PolicyRunsAreReproducible) {
  for (const track::ProbePolicy policy :
       {track::ProbePolicy::kNeighborhood, track::ProbePolicy::kBanditUcb}) {
    const ServeConfig cfg = policy_config(policy);
    EXPECT_EQ(run_csv(cfg, 2), run_csv(cfg, 2));
  }
}

}  // namespace
}  // namespace mmw::serve
