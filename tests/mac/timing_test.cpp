#include "mac/timing.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmw::mac {
namespace {

TEST(TimingTest, ZeroMeasurementsIsFree) {
  ProtocolTiming t;
  EXPECT_DOUBLE_EQ(t.alignment_latency_us(0, 1), 0.0);
}

TEST(TimingTest, LatencyFormula) {
  ProtocolTiming t;
  t.measurement_slot_us = 10.0;
  t.beam_switch_us = 1.0;
  t.feedback_slot_us = 20.0;
  t.estimation_us = 30.0;
  // 16 measurements in 2 slots: 16·11 + 2·50 = 276 µs.
  EXPECT_DOUBLE_EQ(t.alignment_latency_us(16, 2), 276.0);
}

TEST(TimingTest, LatencyValidation) {
  ProtocolTiming t;
  EXPECT_THROW(t.alignment_latency_us(5, 0), precondition_error);
  EXPECT_THROW(t.alignment_latency_us(2, 3), precondition_error);
}

TEST(TimingTest, OverheadFractionClamped) {
  ProtocolTiming t;
  // Huge alignment cost in a tiny frame saturates at 1.
  EXPECT_DOUBLE_EQ(t.overhead_fraction(1000, 100, 1.0), 1.0);
  EXPECT_GT(t.overhead_fraction(16, 2, 10000.0), 0.0);
  EXPECT_LT(t.overhead_fraction(16, 2, 10000.0), 1.0);
  EXPECT_THROW(t.overhead_fraction(16, 2, 0.0), precondition_error);
}

TEST(TimingTest, NetSpectralEfficiency) {
  ProtocolTiming t;
  t.measurement_slot_us = 10.0;
  t.beam_switch_us = 0.0;
  t.feedback_slot_us = 0.0;
  t.estimation_us = 0.0;
  // 100 measurements = 1000 µs in a 10000 µs frame → 10% overhead.
  const real eff = t.net_spectral_efficiency(100, 10, 10000.0, 3.0);
  EXPECT_NEAR(eff, 0.9 * 2.0, 1e-12);  // log2(4) = 2
  EXPECT_THROW(t.net_spectral_efficiency(1, 1, 100.0, -1.0),
               precondition_error);
}

TEST(TimingTest, FewerMeasurementsMeansMoreThroughput) {
  ProtocolTiming t;
  const real cheap = t.net_spectral_efficiency(100, 13, 20000.0, 100.0);
  const real expensive = t.net_spectral_efficiency(1024, 128, 20000.0, 100.0);
  EXPECT_GT(cheap, expensive);
}

}  // namespace
}  // namespace mmw::mac
