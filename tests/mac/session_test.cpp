#include "mac/session.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/models.h"
#include "channel/temporal.h"

namespace mmw::mac {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;
using channel::Link;
using randgen::Rng;

struct Fixture {
  ArrayGeometry tx = ArrayGeometry::upa(2, 2);
  ArrayGeometry rx = ArrayGeometry::upa(4, 4);
  Link link;
  Codebook tx_cb = Codebook::dft(tx);
  Codebook rx_cb = Codebook::dft(rx);
  Rng rng{7};

  Fixture()
      : link(tx, rx, {channel::Path{1.0, {0.2, 0.1}, {-0.3, 0.0}}}) {}

  Session session(real gamma = 10.0, index_t budget = 64,
                  index_t fades = 1) {
    return Session(link, tx_cb, rx_cb, gamma, budget, rng, fades);
  }
};

TEST(SessionTest, ConstructionValidation) {
  Fixture f;
  EXPECT_THROW(Session(f.link, f.tx_cb, f.rx_cb, 0.0, 10, f.rng),
               precondition_error);
  EXPECT_THROW(Session(f.link, f.tx_cb, f.rx_cb, 10.0, 0, f.rng),
               precondition_error);
  EXPECT_THROW(Session(f.link, f.tx_cb, f.rx_cb, 10.0, 10, f.rng, 0),
               precondition_error);
  // RX codebook on the TX array: dimension mismatch.
  EXPECT_THROW(Session(f.link, f.rx_cb, f.rx_cb, 10.0, 10, f.rng),
               precondition_error);
}

TEST(SessionTest, BudgetClampedToPairCount) {
  Fixture f;
  Session s = f.session(10.0, /*budget=*/100000);
  EXPECT_EQ(s.budget(), 4u * 16u);
}

TEST(SessionTest, MeasureConsumesBudget) {
  Fixture f;
  Session s = f.session(10.0, 3);
  EXPECT_EQ(s.remaining_budget(), 3u);
  s.measure(0, 0);
  s.measure(0, 1);
  EXPECT_EQ(s.measurements_taken(), 2u);
  EXPECT_EQ(s.remaining_budget(), 1u);
  EXPECT_FALSE(s.exhausted());
  s.measure(1, 0);
  EXPECT_TRUE(s.exhausted());
  EXPECT_THROW(s.measure(1, 1), precondition_error);
}

TEST(SessionTest, RepeatMeasurementThrows) {
  Fixture f;
  Session s = f.session();
  s.measure(2, 5);
  EXPECT_TRUE(s.has_measured(2, 5));
  EXPECT_FALSE(s.has_measured(3, 2));
  EXPECT_THROW(s.measure(2, 5), precondition_error);
}

TEST(SessionTest, IndexValidation) {
  Fixture f;
  Session s = f.session();
  EXPECT_THROW(s.has_measured(4, 0), precondition_error);
  EXPECT_THROW(s.has_measured(0, 16), precondition_error);
}

TEST(SessionTest, RecordsPreserveOrder) {
  Fixture f;
  Session s = f.session();
  s.measure(1, 2);
  s.measure(3, 4);
  ASSERT_EQ(s.records().size(), 2u);
  EXPECT_EQ(s.records()[0].tx_beam, 1u);
  EXPECT_EQ(s.records()[0].rx_beam, 2u);
  EXPECT_EQ(s.records()[1].tx_beam, 3u);
}

TEST(SessionTest, BestMeasuredTracksMaxEnergy) {
  Fixture f;
  Session s = f.session();
  EXPECT_FALSE(s.best_measured().has_value());
  s.measure(0, 0);
  s.measure(1, 7);
  s.measure(2, 3);
  const auto best = s.best_measured();
  ASSERT_TRUE(best.has_value());
  real max_e = 0.0;
  for (const auto& r : s.records()) max_e = std::max(max_e, r.energy);
  EXPECT_EQ(best->energy, max_e);
}

TEST(SessionTest, MeasuredEnergyIsNonNegative) {
  Fixture f;
  Session s = f.session();
  for (index_t t = 0; t < 4; ++t)
    for (index_t r = 0; r < 4; ++r) EXPECT_GE(s.measure(t, r), 0.0);
}

TEST(SessionTest, EnergiesMatchExpectedMean) {
  // Average measured energy over many pairs-with-same-beams sessions must
  // match λ = vᴴ Q_u v + 1/γ.
  Fixture f;
  const real gamma = 5.0;
  const auto& u = f.tx_cb.codeword(1);
  const auto& v = f.rx_cb.codeword(3);
  const real lambda =
      linalg::hermitian_form(v, f.link.rx_covariance_for_beam(u)) +
      1.0 / gamma;
  real acc = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    Session s(f.link, f.tx_cb, f.rx_cb, gamma, 1, f.rng);
    acc += s.measure(1, 3);
  }
  EXPECT_NEAR(acc / trials / lambda, 1.0, 0.1);
}

TEST(SessionTest, FadeAveragingReducesVariance) {
  Fixture f;
  const real gamma = 5.0;
  auto sample_var = [&](index_t fades) {
    real sum = 0.0, sq = 0.0;
    const int trials = 1500;
    for (int i = 0; i < trials; ++i) {
      Session s(f.link, f.tx_cb, f.rx_cb, gamma, 1, f.rng, fades);
      const real e = s.measure(0, 0);
      sum += e;
      sq += e * e;
    }
    const real mean = sum / trials;
    return sq / trials - mean * mean;
  };
  EXPECT_LT(sample_var(16), 0.5 * sample_var(1));
}

TEST(SessionTest, BlockageValidation) {
  Fixture f;
  Session s = f.session();
  EXPECT_THROW(s.set_blockage_probability(-0.1), precondition_error);
  EXPECT_THROW(s.set_blockage_probability(1.1), precondition_error);
  s.set_blockage_probability(0.5);
  EXPECT_DOUBLE_EQ(s.blockage_probability(), 0.5);
  s.measure(0, 0);
  EXPECT_THROW(s.set_blockage_probability(0.2), precondition_error);
}

TEST(SessionTest, FullBlockageLeavesOnlyNoise) {
  // With p = 1 every measurement is noise-only: mean energy = 1/γ.
  Fixture f;
  const real gamma = 4.0;
  real acc = 0.0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    Session s(f.link, f.tx_cb, f.rx_cb, gamma, 1, f.rng, 4);
    s.set_blockage_probability(1.0);
    acc += s.measure(0, 0);
  }
  EXPECT_NEAR(acc / trials, 1.0 / gamma, 0.05);
}

TEST(SessionTest, PartialBlockageReducesMeanEnergy) {
  Fixture f;
  const real gamma = 4.0;
  // Pick the strongest codebook pair so the signal part dominates noise.
  index_t best_t = 0, best_r = 0;
  real best_gain = -1.0;
  for (index_t t = 0; t < f.tx_cb.size(); ++t)
    for (index_t r = 0; r < f.rx_cb.size(); ++r) {
      const real g =
          f.link.mean_pair_gain(f.tx_cb.codeword(t), f.rx_cb.codeword(r));
      if (g > best_gain) {
        best_gain = g;
        best_t = t;
        best_r = r;
      }
    }
  auto mean_energy = [&](real p) {
    real acc = 0.0;
    const int trials = 2500;
    for (int i = 0; i < trials; ++i) {
      Session s(f.link, f.tx_cb, f.rx_cb, gamma, 1, f.rng, 4);
      s.set_blockage_probability(p);
      acc += s.measure(best_t, best_r);
    }
    return acc / trials;
  };
  EXPECT_LT(mean_energy(0.8), 0.5 * mean_energy(0.0));
}

TEST(SessionTest, FadesPerMeasurementAccessor) {
  Fixture f;
  Session s = f.session(10.0, 4, 8);
  EXPECT_EQ(s.fades_per_measurement(), 8u);
  EXPECT_NEAR(s.gamma(), 10.0, 1e-12);
}

TEST(SessionFaultTest, ArmFaultsValidation) {
  Fixture f;
  const fault::FaultPlan plan;  // clean plan
  {
    Session s = f.session();
    s.measure(0, 0);
    EXPECT_THROW(s.arm_faults(&plan, nullptr), precondition_error);
  }
  {
    // A plan with a blockage event requires the degraded link.
    const fault::FaultPlan blocked = fault::FaultPlan::scripted(
        {}, /*blockage_onset=*/0, {0.1}, {});
    Session s = f.session();
    EXPECT_THROW(s.arm_faults(&blocked, nullptr), precondition_error);
  }
}

TEST(SessionFaultTest, DroppedSlotRecordsZeroAndConsumesNoDraws) {
  Fixture f;
  std::vector<fault::SlotFault> slots(3);
  slots[0].dropped = true;
  const fault::FaultPlan plan =
      fault::FaultPlan::scripted(slots, ~index_t{0}, {}, {});

  Rng rng_a{99}, rng_b{99};
  Session a(f.link, f.tx_cb, f.rx_cb, 10.0, 8, rng_a, 2);
  a.arm_faults(&plan, nullptr);
  Session b(f.link, f.tx_cb, f.rx_cb, 10.0, 8, rng_b, 2);

  EXPECT_EQ(a.measure(0, 0), 0.0);  // dropped: zero energy recorded
  ASSERT_EQ(a.records().size(), 1u);
  EXPECT_EQ(a.records()[0].energy, 0.0);
  // The dropped slot consumed NO draws, so a's next measurement sees the
  // same rng state b starts with — identical energies for the same pair.
  EXPECT_EQ(a.measure(0, 1), b.measure(0, 1));
}

TEST(SessionFaultTest, OutlierScalesRecordedEnergyExactly) {
  Fixture f;
  std::vector<fault::SlotFault> slots(2);
  slots[0].energy_scale = 25.0;
  const fault::FaultPlan plan =
      fault::FaultPlan::scripted(slots, ~index_t{0}, {}, {});

  Rng rng_a{5}, rng_b{5};
  Session a(f.link, f.tx_cb, f.rx_cb, 10.0, 8, rng_a, 4);
  a.arm_faults(&plan, nullptr);
  Session b(f.link, f.tx_cb, f.rx_cb, 10.0, 8, rng_b, 4);
  EXPECT_EQ(a.measure(1, 2), 25.0 * b.measure(1, 2));
}

TEST(SessionFaultTest, BlockageOnsetSwitchesToDegradedLink) {
  Fixture f;
  const std::vector<real> scale{0.05};
  const channel::Link degraded = channel::blocked_link(f.link, scale);
  // Onset 0: every measurement sees the degraded link. The armed session
  // on the CLEAN link must reproduce an unarmed session on the degraded
  // link draw-for-draw.
  const fault::FaultPlan plan =
      fault::FaultPlan::scripted({}, /*blockage_onset=*/0, {0.05}, {});

  Rng rng_a{17}, rng_b{17};
  Session a(f.link, f.tx_cb, f.rx_cb, 10.0, 8, rng_a, 4);
  a.arm_faults(&plan, &degraded);
  Session b(degraded, f.tx_cb, f.rx_cb, 10.0, 8, rng_b, 4);
  EXPECT_EQ(a.measure(0, 0), b.measure(0, 0));
  EXPECT_EQ(a.measure(2, 7), b.measure(2, 7));
}

TEST(SessionRealignTest, EmptySessionReportsNoOutage) {
  Fixture f;
  Session s = f.session();
  const auto report = s.verify_and_realign();
  EXPECT_FALSE(report.outage);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(s.recovery_slots(), 0u);
}

TEST(SessionRealignTest, CleanVerificationSpendsOneSlot) {
  Fixture f;
  Session s = f.session(/*gamma=*/50.0, /*budget=*/16, /*fades=*/8);
  for (index_t t = 0; t < 4; ++t)
    for (index_t r = 0; r < 4; ++r) s.measure(t, r);
  const index_t trained = s.records().size();
  Session::RealignmentPolicy policy;
  policy.verify_fades = 16;
  const auto report = s.verify_and_realign(policy);
  // A static link cannot collapse: the claimed pair re-verifies.
  EXPECT_FALSE(report.outage);
  EXPECT_EQ(report.tx_beam, s.best_measured()->tx_beam);
  EXPECT_EQ(report.rx_beam, s.best_measured()->rx_beam);
  EXPECT_EQ(s.recovery_slots(), 1u);
  // Training ledger untouched: prefix grading still sees only training.
  EXPECT_EQ(s.records().size(), trained);
  ASSERT_EQ(s.recovery_records().size(), 1u);
  EXPECT_EQ(s.recovery_records()[0].energy, report.energy);
}

TEST(SessionRealignTest, PostTrainingBlockageDeclaresOutage) {
  Fixture f;
  const index_t budget = 16;
  // Blockage onset AT the budget: training is clean, every verification /
  // recovery probe (slot >= budget) sees the deeply attenuated link.
  const fault::FaultPlan plan =
      fault::FaultPlan::scripted({}, /*blockage_onset=*/budget, {1e-4}, {});
  const channel::Link degraded =
      channel::blocked_link(f.link, std::vector<real>{1e-4});

  Rng rng{31};
  Session s(f.link, f.tx_cb, f.rx_cb, /*gamma=*/100.0, budget, rng, 8);
  s.arm_faults(&plan, &degraded);
  for (index_t t = 0; t < 4; ++t)
    for (index_t r = 0; r < 4; ++r) s.measure(t, r);

  Session::RealignmentPolicy policy;
  policy.verify_fades = 8;
  policy.max_retries = 2;
  policy.widen_radius = 1;
  const auto report = s.verify_and_realign(policy);
  // The whole (single-path) link is shadowed ~40 dB: the claimed pair
  // collapses and no neighbour can clear the threshold either.
  EXPECT_TRUE(report.outage);
  EXPECT_FALSE(report.recovered);
  EXPECT_GT(s.recovery_slots(), 1u);
  // Training records still untouched.
  EXPECT_EQ(s.records().size(), 16u);
}

}  // namespace
}  // namespace mmw::mac
