#include "estimation/covariance_ml.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "channel/link.h"
#include "linalg/eig.h"
#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

/// Simulates the paper's measurement chain: z = vᴴh + n, h ~ CN(0,Q),
/// n ~ CN(0,1/γ); returns (v, |z|²) pairs for random unit beams.
std::vector<BeamMeasurement> simulate_measurements(const Matrix& q,
                                                   real gamma, index_t count,
                                                   Rng& rng) {
  const Matrix root = linalg::hermitian_sqrt(q);
  std::vector<BeamMeasurement> out;
  out.reserve(count);
  for (index_t j = 0; j < count; ++j) {
    BeamMeasurement m;
    m.beam = rng.random_unit_vector(q.rows());
    const Vector h = root * rng.complex_gaussian_vector(q.rows());
    const cx z = linalg::dot(m.beam, h) + rng.complex_normal(1.0 / gamma);
    m.energy = std::norm(z);
    out.push_back(std::move(m));
  }
  return out;
}

Matrix planted_low_rank(Rng& rng, index_t n, index_t rank, real power) {
  Matrix q(n, n);
  for (index_t k = 0; k < rank; ++k) {
    const Vector x = rng.random_unit_vector(n);
    q += Matrix::outer(x, x) * cx{power / static_cast<real>(rank), 0.0};
  }
  return q * cx{static_cast<real>(n), 0.0};  // trace ≈ n·power
}

TEST(MeasurementModelTest, ExpectedEnergyFormula) {
  Rng rng(1);
  const Matrix q = planted_low_rank(rng, 8, 2, 1.0);
  const Vector v = rng.random_unit_vector(8);
  const real gamma = 50.0;
  EXPECT_NEAR(expected_energy(q, v, gamma),
              linalg::hermitian_form(v, q) + 1.0 / gamma, 1e-10);
  EXPECT_THROW(expected_energy(q, v, 0.0), precondition_error);
}

TEST(MeasurementModelTest, EnergiesAverageToLambda) {
  Rng rng(2);
  const Matrix q = planted_low_rank(rng, 6, 1, 1.0);
  const real gamma = 100.0;
  const Matrix root = linalg::hermitian_sqrt(q);
  const Vector v = rng.random_unit_vector(6);
  real acc = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const Vector h = root * rng.complex_gaussian_vector(6);
    const cx z = linalg::dot(v, h) + rng.complex_normal(1.0 / gamma);
    acc += std::norm(z);
  }
  EXPECT_NEAR(acc / trials / expected_energy(q, v, gamma), 1.0, 0.05);
}

TEST(MeasurementModelTest, NllPenalizesWrongCovariance) {
  Rng rng(3);
  const Matrix q_true = planted_low_rank(rng, 8, 2, 1.0);
  const auto ms = simulate_measurements(q_true, 100.0, 200, rng);
  const real nll_true = negative_log_likelihood(q_true, ms, 100.0);
  const Matrix q_wrong = planted_low_rank(rng, 8, 2, 1.0);
  const real nll_wrong = negative_log_likelihood(q_wrong, ms, 100.0);
  EXPECT_LT(nll_true, nll_wrong);
}

TEST(CovarianceMlTest, InputValidation) {
  CovarianceMlOptions opts;
  EXPECT_THROW(estimate_covariance_ml(4, {}, opts), precondition_error);
  std::vector<BeamMeasurement> wrong_dim{{Vector(3), 1.0}};
  EXPECT_THROW(estimate_covariance_ml(4, wrong_dim, opts),
               precondition_error);
  std::vector<BeamMeasurement> ok{{Vector::basis(4, 0), 1.0}};
  CovarianceMlOptions bad = opts;
  bad.mu = -1.0;
  EXPECT_THROW(estimate_covariance_ml(4, ok, bad), precondition_error);
  bad = opts;
  bad.gamma = 0.0;
  EXPECT_THROW(estimate_covariance_ml(4, ok, bad), precondition_error);
}

TEST(CovarianceMlTest, EstimateIsHermitianPsd) {
  Rng rng(4);
  const Matrix q = planted_low_rank(rng, 8, 2, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 48, rng);
  CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimate_covariance_ml(8, ms, opts);
  EXPECT_TRUE(res.q.dense().is_hermitian(1e-8));
  const auto eig = res.q.eig();
  for (const real e : eig.eigenvalues) EXPECT_GE(e, -1e-8);
}

TEST(CovarianceMlTest, RecoversDominantEigenvectorRankOne) {
  Rng rng(5);
  const index_t n = 8;
  const Vector x = rng.random_unit_vector(n);
  const Matrix q = Matrix::outer(x, x) * cx{static_cast<real>(n) * 4.0, 0.0};
  const auto ms = simulate_measurements(q, 100.0, 32, rng);
  CovarianceMlOptions opts;
  opts.gamma = 100.0;
  opts.mu = 0.5;
  const auto res = estimate_covariance_ml(n, ms, opts);
  const auto eig = res.q.eig();
  // Dominant eigenvector aligned with the planted direction.
  EXPECT_GT(std::abs(linalg::dot(eig.principal_eigenvector(), x)), 0.85);
}

TEST(CovarianceMlTest, OperationalGainAtLargeDimension) {
  // At N = 16 with single-sample energy measurements the estimate is rough,
  // but pointing a beam along its dominant eigenvector must still beat a
  // random beam by a wide margin — the property the alignment scheme needs.
  Rng rng(50);
  const index_t n = 16;
  real est_gain = 0.0, rand_gain = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    const Vector x = rng.random_unit_vector(n);
    const Matrix q =
        Matrix::outer(x, x) * cx{static_cast<real>(n) * 4.0, 0.0};
    const auto ms = simulate_measurements(q, 100.0, 48, rng);
    CovarianceMlOptions opts;
    opts.gamma = 100.0;
    opts.mu = 0.5;
    const auto res = estimate_covariance_ml(n, ms, opts);
    const auto eig = res.q.eig();
    est_gain += linalg::hermitian_form(eig.principal_eigenvector(), q);
    rand_gain += linalg::hermitian_form(rng.random_unit_vector(n), q);
  }
  EXPECT_GT(est_gain, 3.0 * rand_gain);
}

TEST(CovarianceMlTest, EstimateLiesInBeamSpan) {
  // The subspace reduction is exact: range(Q̂) ⊆ span{v_j}.
  Rng rng(51);
  const index_t n = 12;
  const Matrix q = planted_low_rank(rng, n, 2, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 5, rng);
  CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimate_covariance_ml(n, ms, opts);
  // Project Q̂'s columns out of the beam span; the residual must vanish.
  std::vector<Vector> basis;
  for (const auto& m : ms) {
    Vector v = m.beam;
    for (const Vector& b : basis) v -= linalg::dot(b, v) * b;
    if (v.norm() > 1e-9) basis.push_back(v.normalized());
  }
  for (index_t c = 0; c < n; ++c) {
    Vector col = res.q.dense().col(c);
    for (const Vector& b : basis) col -= linalg::dot(b, col) * b;
    EXPECT_NEAR(col.norm(), 0.0, 1e-8 * (1.0 + res.q.dense().frobenius_norm()));
  }
}

TEST(CovarianceMlTest, BeatsSampleCovarianceInUndersampledRegime) {
  // With J < N measurements, the regularized ML estimate should be closer
  // to the truth (in relative Frobenius error) than the moment estimate.
  Rng rng(6);
  const index_t n = 16;
  real err_ml = 0.0, err_sample = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const Matrix q = planted_low_rank(rng, n, 2, 1.0);
    const auto ms = simulate_measurements(q, 100.0, 10, rng);
    CovarianceMlOptions opts;
    opts.gamma = 100.0;
    opts.mu = 0.5;
    const auto res = estimate_covariance_ml(n, ms, opts);
    err_ml += (res.q.dense() - q).frobenius_norm() / q.frobenius_norm();
    const Matrix qs = sample_covariance_estimate(n, ms, 100.0);
    err_sample += (qs - q).frobenius_norm() / q.frobenius_norm();
  }
  EXPECT_LT(err_ml, err_sample);
}

TEST(CovarianceMlTest, StrongRegularizationShrinksRank) {
  Rng rng(7);
  const index_t n = 12;
  const Matrix q = planted_low_rank(rng, n, 3, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 60, rng);
  CovarianceMlOptions weak;
  weak.gamma = 100.0;
  weak.mu = 1e-4;
  CovarianceMlOptions strong = weak;
  strong.mu = 5.0;
  const auto res_weak = estimate_covariance_ml(n, ms, weak);
  const auto res_strong = estimate_covariance_ml(n, ms, strong);
  EXPECT_LE(linalg::numerical_rank(res_strong.q.dense(), 1e-6),
            linalg::numerical_rank(res_weak.q.dense(), 1e-6));
}

TEST(CovarianceMlTest, ObjectiveDecreasesFromWarmStart) {
  Rng rng(8);
  const index_t n = 10;
  const Matrix q = planted_low_rank(rng, n, 2, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 40, rng);
  CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const Matrix warm = sample_covariance_estimate(n, ms, 100.0);
  const real f0 = negative_log_likelihood(warm, ms, opts.gamma) +
                  opts.mu * warm.trace().real();
  const auto res = estimate_covariance_ml(n, ms, opts);
  EXPECT_LE(res.objective, f0 + 1e-9);
}

TEST(CovarianceMlTest, ConvergesWithinBudget) {
  Rng rng(9);
  const index_t n = 8;
  const Matrix q = planted_low_rank(rng, n, 1, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 32, rng);
  CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimate_covariance_ml(n, ms, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, opts.max_iterations);
}

TEST(CovarianceEmTest, InputValidation) {
  CovarianceEmOptions opts;
  EXPECT_THROW(estimate_covariance_em(4, {}, opts), precondition_error);
  std::vector<BeamMeasurement> ok{{Vector::basis(4, 0), 1.0}};
  CovarianceEmOptions bad = opts;
  bad.gamma = 0.0;
  EXPECT_THROW(estimate_covariance_em(4, ok, bad), precondition_error);
  bad = opts;
  bad.mu = -1.0;
  EXPECT_THROW(estimate_covariance_em(4, ok, bad), precondition_error);
}

TEST(CovarianceEmTest, LikelihoodIsMonotone) {
  // EM's defining property: the NLL never increases across iterations.
  // Verified by comparing the NLL at increasing iteration caps.
  Rng rng(20);
  const index_t n = 10;
  const Matrix q = planted_low_rank(rng, n, 2, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 30, rng);
  real prev = std::numeric_limits<real>::infinity();
  for (const int iters : {1, 3, 10, 40, 150}) {
    CovarianceEmOptions opts;
    opts.gamma = 100.0;
    opts.max_iterations = iters;
    opts.tolerance = 0.0;  // run the full budget
    const auto res = estimate_covariance_em(n, ms, opts);
    const real nll = negative_log_likelihood(res.q, ms, 100.0);
    EXPECT_LE(nll, prev + 1e-7 * (1.0 + std::abs(prev)));
    prev = nll;
  }
}

TEST(CovarianceEmTest, AgreesWithProximalSolverOnNll) {
  // Two independent solvers of the same likelihood should reach similar
  // NLL values (both may stop at different local optima of a non-convex
  // landscape, so only rough agreement is demanded).
  Rng rng(21);
  const index_t n = 8;
  const Matrix q = planted_low_rank(rng, n, 1, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 32, rng);
  CovarianceMlOptions pg;
  pg.gamma = 100.0;
  pg.mu = 0.0;
  CovarianceEmOptions em;
  em.gamma = 100.0;
  const real nll_pg =
      negative_log_likelihood(estimate_covariance_ml(n, ms, pg).q, ms, 100.0);
  const real nll_em =
      negative_log_likelihood(estimate_covariance_em(n, ms, em).q, ms, 100.0);
  EXPECT_NEAR(nll_pg, nll_em, 0.15 * std::abs(nll_pg) + 2.0);
}

TEST(CovarianceEmTest, EstimateIsHermitianPsd) {
  Rng rng(22);
  const index_t n = 12;
  const Matrix q = planted_low_rank(rng, n, 2, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 8, rng);
  CovarianceEmOptions opts;
  opts.gamma = 100.0;
  const auto res = estimate_covariance_em(n, ms, opts);
  EXPECT_TRUE(res.q.dense().is_hermitian(1e-8 * (1.0 + res.q.dense().max_abs())));
  const auto eig = res.q.eig();
  for (const real e : eig.eigenvalues)
    EXPECT_GE(e, -1e-8 * (1.0 + std::abs(eig.eigenvalues[0])));
}

TEST(CovarianceEmTest, TraceShrinkageReducesTrace) {
  Rng rng(23);
  const index_t n = 10;
  const Matrix q = planted_low_rank(rng, n, 2, 1.0);
  const auto ms = simulate_measurements(q, 100.0, 30, rng);
  CovarianceEmOptions plain;
  plain.gamma = 100.0;
  CovarianceEmOptions shrunk = plain;
  shrunk.mu = 5.0;
  const real tr_plain =
      estimate_covariance_em(n, ms, plain).q.trace();
  const real tr_shrunk =
      estimate_covariance_em(n, ms, shrunk).q.trace();
  EXPECT_LT(tr_shrunk, tr_plain);
}

TEST(CovarianceEmTest, RecoversPlantedDirection) {
  Rng rng(24);
  const index_t n = 8;
  const Vector x = rng.random_unit_vector(n);
  const Matrix q = Matrix::outer(x, x) * cx{static_cast<real>(n) * 4.0, 0.0};
  const auto ms = simulate_measurements(q, 100.0, 32, rng);
  CovarianceEmOptions opts;
  opts.gamma = 100.0;
  const auto res = estimate_covariance_em(n, ms, opts);
  const auto eig = res.q.eig();
  EXPECT_GT(std::abs(linalg::dot(eig.principal_eigenvector(), x)), 0.85);
}

TEST(SampleCovarianceTest, NoiseFloorSubtracted) {
  // Measurements at exactly the noise floor produce a zero estimate.
  std::vector<BeamMeasurement> ms;
  const real gamma = 10.0;
  for (index_t i = 0; i < 4; ++i)
    ms.push_back({Vector::basis(4, i), 1.0 / gamma});
  const Matrix q = sample_covariance_estimate(4, ms, gamma);
  EXPECT_NEAR(q.frobenius_norm(), 0.0, 1e-12);
}

TEST(SampleCovarianceTest, SingleBeamGivesRankOne) {
  std::vector<BeamMeasurement> ms{{Vector::basis(4, 1), 5.0}};
  const Matrix q = sample_covariance_estimate(4, ms, 100.0);
  EXPECT_EQ(linalg::numerical_rank(q, 1e-10), 1u);
  EXPECT_GT(q(1, 1).real(), 0.0);
}

TEST(DiagonalLoadingTest, AddsTraceProportionalRidge) {
  std::vector<BeamMeasurement> ms{{Vector::basis(4, 0), 5.0}};
  const Matrix plain = sample_covariance_estimate(4, ms, 100.0);
  const Matrix loaded = diagonal_loading_estimate(4, ms, 100.0, 0.5);
  const real expected_load = 0.5 * plain.trace().real() / 4.0;
  EXPECT_NEAR(loaded(3, 3).real(), expected_load, 1e-10);
  EXPECT_THROW(diagonal_loading_estimate(4, ms, 100.0, -0.1),
               precondition_error);
}

}  // namespace
}  // namespace mmw::estimation
