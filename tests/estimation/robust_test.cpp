#include "estimation/robust.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/context.h"
#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

std::vector<BeamMeasurement> simulate_measurements(const Matrix& q,
                                                   real gamma, index_t count,
                                                   Rng& rng) {
  const Matrix root = linalg::hermitian_sqrt(q);
  std::vector<BeamMeasurement> out;
  out.reserve(count);
  for (index_t j = 0; j < count; ++j) {
    BeamMeasurement m;
    m.beam = rng.random_unit_vector(q.rows());
    const Vector h = root * rng.complex_gaussian_vector(q.rows());
    const cx z = linalg::dot(m.beam, h) + rng.complex_normal(1.0 / gamma);
    m.energy = std::norm(z);
    out.push_back(std::move(m));
  }
  return out;
}

Matrix planted_low_rank(Rng& rng, index_t n, index_t rank, real power) {
  Matrix q(n, n);
  for (index_t k = 0; k < rank; ++k) {
    const Vector x = rng.random_unit_vector(n);
    q += Matrix::outer(x, x) * cx{power / static_cast<real>(rank), 0.0};
  }
  return q * cx{static_cast<real>(n), 0.0};
}

struct Fixture {
  index_t n = 8;
  real gamma = 100.0;
  Rng rng{20160401};
  Matrix q_true;
  std::vector<BeamMeasurement> ms;
  CovarianceMlOptions options;

  Fixture() {
    q_true = planted_low_rank(rng, n, 2, 1.0);
    ms = simulate_measurements(q_true, gamma, 40, rng);
    options.gamma = gamma;
  }
};

void expect_same_dense(const linalg::FactoredHermitian& a,
                       const linalg::FactoredHermitian& b) {
  const Matrix da = a.dense();
  const Matrix db = b.dense();
  ASSERT_EQ(da.rows(), db.rows());
  for (index_t i = 0; i < da.rows(); ++i)
    for (index_t j = 0; j < da.cols(); ++j) {
      EXPECT_EQ(da(i, j).real(), db(i, j).real()) << i << "," << j;
      EXPECT_EQ(da(i, j).imag(), db(i, j).imag()) << i << "," << j;
    }
}

TEST(RobustEstimateTest, UnarmedIsBitIdenticalToDirectMl) {
  // The golden-figure contract: with no fault context armed, the ladder
  // wrapper must return EXACTLY what the direct estimator call returns.
  Fixture f;
  ASSERT_EQ(fault::current_trial_faults(), nullptr);
  const RobustEstimateResult r = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kRegularizedMl);
  EXPECT_EQ(r.rung, SolveRung::kPrimary);
  EXPECT_EQ(r.primary_status, SolveStatus::kOk);
  const CovarianceMlResult direct =
      estimate_covariance_ml(f.n, f.ms, f.options);
  expect_same_dense(r.q, direct.q);
}

TEST(RobustEstimateTest, UnarmedIsBitIdenticalToDirectEm) {
  Fixture f;
  const RobustEstimateResult r = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kEmMl);
  EXPECT_EQ(r.rung, SolveRung::kPrimary);
  CovarianceEmOptions em;
  em.gamma = f.options.gamma;
  em.mu = f.options.mu;
  expect_same_dense(r.q, estimate_covariance_em(f.n, f.ms, em).q);
}

TEST(RobustEstimateTest, UnarmedIsBitIdenticalToBaselines) {
  Fixture f;
  const RobustEstimateResult sample = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kSampleCovariance);
  expect_same_dense(sample.q,
                    linalg::FactoredHermitian::from_dense(
                        sample_covariance_estimate(f.n, f.ms, f.gamma)));
  const RobustEstimateResult diag = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kDiagonalLoading);
  expect_same_dense(diag.q,
                    linalg::FactoredHermitian::from_dense(
                        diagonal_loading_estimate(f.n, f.ms, f.gamma)));
}

TEST(RobustEstimateTest, UnarmedAcceptsNonconvergedPrimary) {
  // Clean runs historically used non-converged ML estimates as-is; the
  // ladder must not change that (bit-identity again).
  Fixture f;
  f.options.max_iterations = 1;  // will not converge in one step
  const RobustEstimateResult r = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kRegularizedMl);
  EXPECT_EQ(r.rung, SolveRung::kPrimary);
  EXPECT_EQ(r.primary_status, SolveStatus::kOk);
  expect_same_dense(r.q, estimate_covariance_ml(f.n, f.ms, f.options).q);
}

TEST(RobustEstimateTest, StressedSolveEngagesLadder) {
  Fixture f;
  // With faults armed, non-convergence triggers the ladder too — give the
  // clean solve enough iterations that only the scripted stress can fail it.
  f.options.max_iterations = 5000;
  // Script: solve 0 stressed, solve 1 clean.
  const fault::FaultPlan plan =
      fault::FaultPlan::scripted({}, ~index_t{0}, {}, {true, false});
  fault::TrialFaultState state;
  state.plan = &plan;
  fault::ScopedTrialFaults guard(state);

  const RobustEstimateResult stressed = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kRegularizedMl);
  EXPECT_EQ(stressed.primary_status, SolveStatus::kStressed);
  EXPECT_NE(stressed.rung, SolveRung::kPrimary);
  EXPECT_TRUE(std::isfinite(stressed.q.trace()));
  EXPECT_EQ(state.solves, 1u);
  EXPECT_EQ(state.stressed_solves, 1u);

  const RobustEstimateResult clean = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kRegularizedMl);
  EXPECT_EQ(clean.primary_status, SolveStatus::kOk);
  EXPECT_EQ(clean.rung, SolveRung::kPrimary);
  EXPECT_EQ(state.solves, 2u);
  EXPECT_EQ(state.stressed_solves, 1u);

  // Rung histogram: one degraded solve, one primary.
  std::uint64_t total = 0;
  for (const std::uint64_t c : state.rung_counts) total += c;
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(state.rung_counts[static_cast<int>(SolveRung::kPrimary)], 1u);
}

TEST(RobustEstimateTest, StressedBaselineKindFallsToUniform) {
  // For the moment-matching kinds the ladder has no em/sample rung (they
  // ARE the sample family), so stress lands on the uniform prior.
  Fixture f;
  const fault::FaultPlan plan =
      fault::FaultPlan::scripted({}, ~index_t{0}, {}, {true});
  fault::TrialFaultState state;
  state.plan = &plan;
  fault::ScopedTrialFaults guard(state);
  const RobustEstimateResult r = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kSampleCovariance);
  EXPECT_EQ(r.rung, SolveRung::kUniform);
  // Uniform rung: scaled identity — off-diagonals exactly zero.
  const Matrix d = r.q.dense();
  for (index_t i = 0; i < d.rows(); ++i)
    for (index_t j = 0; j < d.cols(); ++j)
      if (i != j) EXPECT_EQ(std::abs(d(i, j)), 0.0);
  EXPECT_GT(r.q.trace(), 0.0);
}

TEST(RobustEstimateTest, ArmedWithoutPlanBehavesCleanly) {
  // An armed context with a null plan counts solves but stresses nothing:
  // a converged primary stays on the primary rung.
  Fixture f;
  f.options.max_iterations = 5000;  // rule out nonconvergence-driven rungs
  fault::TrialFaultState state;  // plan stays null
  fault::ScopedTrialFaults guard(state);
  const RobustEstimateResult r = robust_estimate_covariance(
      f.n, f.ms, f.options, EstimatorKind::kRegularizedMl);
  EXPECT_EQ(r.rung, SolveRung::kPrimary);
  EXPECT_EQ(state.solves, 1u);
  EXPECT_EQ(state.stressed_solves, 0u);
}

}  // namespace
}  // namespace mmw::estimation
