// Warm-started ML covariance estimation (estimate_covariance_ml_warm): the
// serving engine's per-slot estimator entry. The contract: the optimization
// problem is IDENTICAL to the cold solver — an empty prior reproduces it
// bit-for-bit, and any prior reaches the same stationary point — only the
// iteration count changes.
#include <gtest/gtest.h>

#include <vector>

#include "antenna/codebook.h"
#include "antenna/geometry.h"
#include "estimation/beamspace.h"
#include "estimation/covariance_ml.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;

// Measurements whose energies are the exact expectations under a
// beam-space ground truth — the solver's fixed point is then near the
// truth and both starts must find it.
struct Fixture {
  Codebook cb = Codebook::dft(ArrayGeometry::upa(4, 2));
  std::vector<BeamComponent> truth{{1, 3.0}, {5, 1.5}};
  linalg::FactoredHermitian q_true;
  std::vector<BeamMeasurement> measurements;
  CovarianceMlOptions opts;

  Fixture() {
    q_true = expand_beam_space(truth, cb);
    opts.gamma = 100.0;
    opts.mu = 0.01;
    opts.max_iterations = 200;
    for (index_t v = 0; v < cb.size(); ++v)
      measurements.push_back(
          {cb.codeword(v), expected_energy(q_true, cb.codeword(v), opts.gamma)});
  }
};

TEST(WarmStart, EmptyPriorReproducesColdStartBitForBit) {
  const Fixture f;
  const CovarianceMlResult cold =
      estimate_covariance_ml(8, f.measurements, f.opts);
  const CovarianceMlResult warm = estimate_covariance_ml_warm(
      8, f.measurements, f.opts, linalg::FactoredHermitian());
  EXPECT_EQ(cold.iterations, warm.iterations);
  EXPECT_EQ(cold.converged, warm.converged);
  EXPECT_EQ(cold.objective, warm.objective);  // bit-exact, not approximate
  const linalg::Matrix a = cold.q.dense();
  const linalg::Matrix b = warm.q.dense();
  ASSERT_EQ(a.rows(), b.rows());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c).real(), b(r, c).real());
      EXPECT_EQ(a(r, c).imag(), b(r, c).imag());
    }
}

TEST(WarmStart, GoodPriorReachesTheSameStationaryPoint) {
  const Fixture f;
  const CovarianceMlResult cold =
      estimate_covariance_ml(8, f.measurements, f.opts);
  const CovarianceMlResult warm =
      estimate_covariance_ml_warm(8, f.measurements, f.opts, f.q_true);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  // Same objective at the solution (same problem, same stationary point).
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-6 * std::abs(cold.objective));
  // The estimates agree where it matters: per-codeword Rayleigh scores.
  for (index_t v = 0; v < f.cb.size(); ++v)
    EXPECT_NEAR(warm.q.rayleigh(f.cb.codeword(v)),
                cold.q.rayleigh(f.cb.codeword(v)), 1e-4);
}

TEST(WarmStart, GoodPriorConvergesNoSlowerThanCold) {
  const Fixture f;
  const CovarianceMlResult cold =
      estimate_covariance_ml(8, f.measurements, f.opts);
  const CovarianceMlResult warm =
      estimate_covariance_ml_warm(8, f.measurements, f.opts, f.q_true);
  ASSERT_TRUE(warm.converged);
  // Starting at (a beam-space expansion of) the truth cannot be slower
  // than the moment-based cold start on exact-expectation data.
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(WarmStart, NoisyMeasurementsStillAgreeAcrossStarts) {
  Fixture f;
  randgen::Rng rng = randgen::Rng::stream(77, 0);
  for (auto& m : f.measurements)
    m.energy *= 0.5 + rng.uniform();  // ±50% multiplicative noise
  const CovarianceMlResult cold =
      estimate_covariance_ml(8, f.measurements, f.opts);
  const CovarianceMlResult warm =
      estimate_covariance_ml_warm(8, f.measurements, f.opts, f.q_true);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  // The NLL is nonconvex, so on noisy data different starts may stop at
  // different near-stationary points; the contract is that a warm start
  // stays in the same objective basin (percent-level), not bit equality —
  // that is only guaranteed for the empty prior.
  EXPECT_NEAR(warm.objective, cold.objective,
              0.02 * std::abs(cold.objective));
}

}  // namespace
}  // namespace mmw::estimation
