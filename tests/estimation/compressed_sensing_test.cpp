#include "estimation/compressed_sensing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "antenna/steering.h"
#include "channel/link.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using antenna::ArrayGeometry;
using antenna::Direction;
using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

struct Fixture {
  ArrayGeometry tx = ArrayGeometry::upa(4, 4);
  ArrayGeometry rx = ArrayGeometry::upa(8, 8);
  static constexpr real kAz = M_PI / 3;
  static constexpr real kEl = M_PI / 6;
  BeamspaceDictionary dict{tx, rx, 9, 5, 13, 7, -kAz, kAz, -kEl, kEl};

  /// Fixed (coherent) channel from planted dictionary atoms.
  Matrix planted_channel(std::initializer_list<OmpResult::Atom> atoms) const {
    OmpResult r;
    r.atoms = atoms;
    return synthesize_channel(dict, r);
  }

  std::vector<CoherentMeasurement> probe(const Matrix& h, index_t count,
                                         Rng& rng, real noise_var) const {
    std::vector<CoherentMeasurement> ms;
    for (index_t k = 0; k < count; ++k) {
      CoherentMeasurement m;
      m.tx_beam = rng.random_unit_vector(16);
      m.rx_beam = rng.random_unit_vector(64);
      m.observation = linalg::dot(m.rx_beam, h * m.tx_beam) +
                      rng.complex_normal(noise_var);
      ms.push_back(std::move(m));
    }
    return ms;
  }
};

TEST(DictionaryTest, SizesAndUnitNormAtoms) {
  Fixture f;
  EXPECT_EQ(f.dict.tx_atoms(), 45u);
  EXPECT_EQ(f.dict.rx_atoms(), 91u);
  EXPECT_EQ(f.dict.size(), 45u * 91u);
  for (index_t i = 0; i < f.dict.tx_atoms(); i += 7)
    EXPECT_NEAR(f.dict.tx_steering(i).norm(), 1.0, 1e-12);
  for (index_t j = 0; j < f.dict.rx_atoms(); j += 11)
    EXPECT_NEAR(f.dict.rx_steering(j).norm(), 1.0, 1e-12);
}

TEST(DictionaryTest, DirectionsMatchSteering) {
  Fixture f;
  const Direction d = f.dict.tx_direction(7);
  EXPECT_TRUE(linalg::approx_equal(
      f.dict.tx_steering(7), antenna::steering_vector(f.tx, d), 1e-12));
}

TEST(DictionaryTest, Validation) {
  const auto geo = ArrayGeometry::upa(2, 2);
  EXPECT_THROW(BeamspaceDictionary(geo, geo, 0, 1, 1, 1, -1, 1, 0, 0),
               precondition_error);
  EXPECT_THROW(BeamspaceDictionary(geo, geo, 2, 1, 2, 1, 1, -1, 0, 0),
               precondition_error);
}

TEST(OmpTest, RecoversSinglePlantedAtomNoiseless) {
  Fixture f;
  Rng rng(3);
  const Matrix h = f.planted_channel({{17, 40, cx{2.0, -1.0}}});
  const auto ms = f.probe(h, 24, rng, 0.0);
  OmpOptions opts;
  opts.max_atoms = 3;
  const auto res = omp_channel_estimate(f.dict, ms, opts);
  ASSERT_GE(res.atoms.size(), 1u);
  EXPECT_EQ(res.atoms[0].tx_index, 17u);
  EXPECT_EQ(res.atoms[0].rx_index, 40u);
  EXPECT_NEAR(std::abs(res.atoms[0].gain - cx{2.0, -1.0}), 0.0, 1e-6);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.relative_residual, 1e-6);
}

TEST(OmpTest, RecoversTwoAtoms) {
  Fixture f;
  Rng rng(4);
  const Matrix h =
      f.planted_channel({{5, 12, cx{3.0, 0.0}}, {30, 77, cx{0.0, 1.5}}});
  const auto ms = f.probe(h, 40, rng, 0.0);
  OmpOptions opts;
  opts.max_atoms = 4;
  const auto res = omp_channel_estimate(f.dict, ms, opts);
  ASSERT_GE(res.atoms.size(), 2u);
  std::set<std::pair<index_t, index_t>> found;
  for (const auto& a : res.atoms) found.insert({a.tx_index, a.rx_index});
  EXPECT_TRUE(found.count({5, 12}));
  EXPECT_TRUE(found.count({30, 77}));
}

TEST(OmpTest, ChannelReconstructionError) {
  Fixture f;
  Rng rng(5);
  const Matrix h =
      f.planted_channel({{8, 20, cx{2.0, 1.0}}, {40, 60, cx{-1.0, 0.5}}});
  const auto ms = f.probe(h, 48, rng, 1e-6);
  OmpOptions opts;
  opts.max_atoms = 4;
  const auto res = omp_channel_estimate(f.dict, ms, opts);
  const Matrix h_hat = synthesize_channel(f.dict, res);
  EXPECT_LT((h_hat - h).frobenius_norm() / h.frobenius_norm(), 0.05);
}

TEST(OmpTest, OffGridPathStillApproximated) {
  // A physical path between grid points: OMP picks nearby atoms and the
  // reconstruction captures most of the channel energy.
  Fixture f;
  Rng rng(6);
  const channel::Link link(
      f.tx, f.rx, {channel::Path{1.0, {0.21, -0.13}, {-0.37, 0.11}}});
  Matrix h = link.draw_channel(rng);
  const auto ms = f.probe(h, 48, rng, 1e-6);
  OmpOptions opts;
  opts.max_atoms = 6;
  opts.residual_tolerance = 1e-3;
  const auto res = omp_channel_estimate(f.dict, ms, opts);
  const Matrix h_hat = synthesize_channel(f.dict, res);
  EXPECT_LT((h_hat - h).frobenius_norm() / h.frobenius_norm(), 0.5);
  // The dominant recovered direction is close to the true AoA/AoD.
  const auto& aod = f.dict.tx_direction(res.atoms[0].tx_index);
  const auto& aoa = f.dict.rx_direction(res.atoms[0].rx_index);
  EXPECT_NEAR(aod.azimuth, 0.21, 0.2);
  EXPECT_NEAR(aoa.azimuth, -0.37, 0.2);
}

TEST(OmpTest, NoisyMeasurementsDegradeGracefully) {
  Fixture f;
  Rng rng(7);
  const Matrix h = f.planted_channel({{17, 40, cx{2.0, 0.0}}});
  const auto ms = f.probe(h, 32, rng, 1e-3);
  OmpOptions opts;
  opts.max_atoms = 2;
  const auto res = omp_channel_estimate(f.dict, ms, opts);
  ASSERT_GE(res.atoms.size(), 1u);
  EXPECT_EQ(res.atoms[0].tx_index, 17u);
  EXPECT_EQ(res.atoms[0].rx_index, 40u);
}

TEST(OmpTest, Validation) {
  Fixture f;
  Rng rng(8);
  EXPECT_THROW(omp_channel_estimate(f.dict, {}, {}), precondition_error);
  const Matrix h = f.planted_channel({{0, 0, cx{1.0, 0.0}}});
  auto ms = f.probe(h, 3, rng, 0.0);
  OmpOptions too_many;
  too_many.max_atoms = 5;
  EXPECT_THROW(omp_channel_estimate(f.dict, ms, too_many),
               precondition_error);
  ms[0].tx_beam = Vector(8);  // wrong dimension
  EXPECT_THROW(omp_channel_estimate(f.dict, ms, {}), precondition_error);
}

TEST(OmpTest, ResidualToleranceStopsEarly) {
  Fixture f;
  Rng rng(9);
  const Matrix h = f.planted_channel({{17, 40, cx{2.0, 0.0}}});
  const auto ms = f.probe(h, 24, rng, 0.0);
  OmpOptions opts;
  opts.max_atoms = 6;
  opts.residual_tolerance = 1e-3;
  const auto res = omp_channel_estimate(f.dict, ms, opts);
  // One atom suffices for a rank-one on-grid channel.
  EXPECT_EQ(res.atoms.size(), 1u);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace mmw::estimation
