// Golden equivalence between the factored estimator output and the dense
// path it replaced.
//
// The estimators historically lifted the reduced-problem solution to a dense
// N×N matrix before anyone could touch it. They now return the factor pair
// {B, Q_r} and lift lazily. These tests pin down the contract that made the
// swap safe: for fixed seeds the lazy lift is BIT-IDENTICAL to the historical
// lift loop, and codebook selection through the factor picks exactly the
// beams the dense path picked — on both evaluation scenarios of the paper
// (single-path, Fig. 5/7; NYC multipath, Fig. 6/8).
#include <gtest/gtest.h>

#include <cmath>

#include "antenna/codebook.h"
#include "channel/models.h"
#include "estimation/covariance_ml.h"
#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;
using linalg::FactoredHermitian;
using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

/// The lift exactly as the dense code path wrote it before the refactor:
/// Q = Σ_{a,b} Q_r(a,b) · b_a b_bᴴ with the same loop nest and the same
/// accumulation order FactoredHermitian::dense() promises to preserve.
Matrix historical_lift(const Matrix& basis, const Matrix& core) {
  const index_t n = basis.rows();
  const index_t r = basis.cols();
  Matrix q(n, n);
  for (index_t a = 0; a < r; ++a)
    for (index_t b = 0; b < r; ++b) {
      const cx qab = core(a, b);
      if (qab == cx{0.0, 0.0}) continue;
      for (index_t i = 0; i < n; ++i) {
        const cx scaled = qab * basis(i, a);
        for (index_t j = 0; j < n; ++j)
          q(i, j) += scaled * std::conj(basis(j, b));
      }
    }
  return q;
}

/// Energy measurements through the paper's slot model: fixed TX beam at the
/// dominant path, refading effective RX channel, matched-filter energies.
std::vector<BeamMeasurement> slot_measurements(const channel::Link& link,
                                               const Codebook& rx_cb,
                                               real gamma, index_t count,
                                               Rng& rng) {
  const Vector u = link.tx_steering(0);
  std::vector<BeamMeasurement> out;
  out.reserve(count);
  for (index_t j = 0; j < count; ++j) {
    BeamMeasurement m;
    m.beam = rx_cb.codeword(j % rx_cb.size());
    const Vector h = link.draw_effective_channel(u, rng);
    m.energy = std::norm(linalg::dot(m.beam, h) +
                         rng.complex_normal(1.0 / gamma));
    out.push_back(std::move(m));
  }
  return out;
}

void expect_bit_identical(const Matrix& x, const Matrix& y) {
  ASSERT_EQ(x.rows(), y.rows());
  ASSERT_EQ(x.cols(), y.cols());
  for (index_t i = 0; i < x.rows(); ++i)
    for (index_t j = 0; j < x.cols(); ++j) {
      EXPECT_EQ(x(i, j).real(), y(i, j).real()) << "at (" << i << "," << j
                                                << ")";
      EXPECT_EQ(x(i, j).imag(), y(i, j).imag()) << "at (" << i << "," << j
                                                << ")";
    }
}

/// Runs the full golden check for one scenario seed: estimator output lifts
/// bit-identically, and factored codebook selection matches dense selection.
void run_golden_check(const channel::Link& link, const Codebook& rx_cb,
                      Rng& rng, real gamma, index_t probes) {
  const auto ms = slot_measurements(link, rx_cb, gamma, probes, rng);

  CovarianceMlOptions opts;
  opts.gamma = gamma;
  const auto res = estimate_covariance_ml(link.rx_size(), ms, opts);
  ASSERT_FALSE(res.q.empty());

  // (1) The lazy lift reproduces the historical dense lift bit-for-bit.
  if (!res.q.is_full()) {
    expect_bit_identical(res.q.dense(),
                         historical_lift(res.q.basis(), res.q.core()));
  }
  const Matrix dense = res.q.dense();

  // (2) Codebook scores through the factor agree with dense scoring.
  const auto scores_factored = rx_cb.covariance_scores(res.q);
  const auto scores_dense = rx_cb.covariance_scores(dense);
  ASSERT_EQ(scores_factored.size(), scores_dense.size());
  real scale = 1.0;
  for (const real s : scores_dense) scale = std::max(scale, std::abs(s));
  for (index_t i = 0; i < scores_dense.size(); ++i)
    EXPECT_NEAR(scores_factored[i], scores_dense[i], 1e-10 * scale);

  // (3) Selection is identical: best beam and every top-k prefix.
  EXPECT_EQ(rx_cb.best_for_covariance(res.q), rx_cb.best_for_covariance(dense));
  for (const index_t k : {index_t{1}, index_t{4}, rx_cb.size()}) {
    EXPECT_EQ(rx_cb.top_k_for_covariance(res.q, k),
              rx_cb.top_k_for_covariance(dense, k))
        << "k=" << k;
  }
}

TEST(FactoredEquivalenceTest, SinglePathGolden) {
  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(4, 4);
  const auto rx_cb = Codebook::dft(rx);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    const auto link = channel::make_single_path_link(tx, rx, rng);
    run_golden_check(link, rx_cb, rng, 100.0, 24);
  }
}

TEST(FactoredEquivalenceTest, MultipathGolden) {
  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(4, 4);
  const auto rx_cb = Codebook::dft(rx);
  for (const std::uint64_t seed : {21u, 22u}) {
    Rng rng(seed);
    const auto link = channel::make_nyc_multipath_link(tx, rx, rng);
    run_golden_check(link, rx_cb, rng, 100.0, 24);
  }
}

TEST(FactoredEquivalenceTest, EmEstimatorGolden) {
  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(4, 4);
  Rng rng(31);
  const auto link = channel::make_nyc_multipath_link(tx, rx, rng);
  const auto rx_cb = Codebook::dft(rx);
  const auto ms = slot_measurements(link, rx_cb, 100.0, 24, rng);
  CovarianceEmOptions opts;
  opts.gamma = 100.0;
  const auto res = estimate_covariance_em(rx.size(), ms, opts);
  ASSERT_FALSE(res.q.empty());
  if (!res.q.is_full()) {
    expect_bit_identical(res.q.dense(),
                         historical_lift(res.q.basis(), res.q.core()));
  }
  EXPECT_EQ(rx_cb.best_for_covariance(res.q),
            rx_cb.best_for_covariance(res.q.dense()));
}

TEST(FactoredEquivalenceTest, FullModeScoresBitIdentical) {
  // When the estimator falls back to a full-rank (from_dense) result — or a
  // caller wraps a moment estimate — scoring the wrapper must be EXACTLY
  // scoring the matrix: same instructions, same bits.
  Rng rng(41);
  const auto rx = ArrayGeometry::upa(4, 4);
  const auto rx_cb = Codebook::dft(rx);
  Matrix q(16, 16);
  for (int k = 0; k < 3; ++k) {
    const Vector x = rng.random_unit_vector(16);
    q += Matrix::outer(x, x) * cx{4.0, 0.0};
  }
  const FactoredHermitian f = FactoredHermitian::from_dense(q);
  const auto scores_wrapped = rx_cb.covariance_scores(f);
  const auto scores_dense = rx_cb.covariance_scores(q);
  ASSERT_EQ(scores_wrapped.size(), scores_dense.size());
  for (index_t i = 0; i < scores_dense.size(); ++i)
    EXPECT_EQ(scores_wrapped[i], scores_dense[i]);
  EXPECT_EQ(rx_cb.top_k_for_covariance(f, rx_cb.size()),
            rx_cb.top_k_for_covariance(q, rx_cb.size()));
}

}  // namespace
}  // namespace mmw::estimation
