// Beam-space compact covariance codec (estimation/beamspace.h): the
// expand/compress/merge triple the serving engine's resident sessions are
// built on. The contracts under test are the ones src/serve/ relies on:
// exact round-trip for codeword-aligned covariances, canonical ascending
// beam order, lowest-beam tie-breaks, and pure-function determinism.
#include "estimation/beamspace.h"

#include <gtest/gtest.h>

#include <vector>

#include "antenna/codebook.h"
#include "antenna/geometry.h"

namespace mmw::estimation {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;

Codebook dft44() { return Codebook::dft(ArrayGeometry::upa(4, 4)); }

TEST(BeamSpace, ExpandEmptyListIsEmptyFactor) {
  const Codebook cb = dft44();
  EXPECT_TRUE(expand_beam_space({}, cb).empty());
  // Non-positive weights are skipped entirely.
  const std::vector<BeamComponent> zeros{{2, 0.0}, {5, -1.0}};
  EXPECT_TRUE(expand_beam_space(zeros, cb).empty());
}

TEST(BeamSpace, ExpandMatchesWeightedOuterProducts) {
  const Codebook cb = dft44();
  const std::vector<BeamComponent> comps{{1, 0.5}, {6, 2.0}, {11, 1.25}};
  const linalg::FactoredHermitian q = expand_beam_space(comps, cb);
  ASSERT_FALSE(q.empty());
  EXPECT_EQ(q.dim(), cb.codeword(0).size());
  // DFT codewords are orthonormal, so the Rayleigh quotient at a named
  // codeword is exactly its weight, and zero at any other codeword.
  for (const auto& c : comps)
    EXPECT_NEAR(q.rayleigh(cb.codeword(c.beam)), c.weight, 1e-12);
  EXPECT_NEAR(q.rayleigh(cb.codeword(0)), 0.0, 1e-12);
  // trace(Σ w_i c_i c_iᴴ) = Σ w_i for unit-norm codewords.
  EXPECT_NEAR(q.trace(), 0.5 + 2.0 + 1.25, 1e-12);
}

TEST(BeamSpace, CompressInvertsExpandForAlignedComponents) {
  const Codebook cb = dft44();
  const std::vector<BeamComponent> comps{{3, 0.75}, {7, 3.0}, {12, 1.5}};
  const linalg::FactoredHermitian q = expand_beam_space(comps, cb);
  const std::vector<BeamComponent> back =
      compress_to_beam_space(q, cb, static_cast<index_t>(comps.size()));
  ASSERT_EQ(back.size(), comps.size());
  for (index_t i = 0; i < comps.size(); ++i) {
    EXPECT_EQ(back[i].beam, comps[i].beam);  // ascending beam order
    EXPECT_NEAR(back[i].weight, comps[i].weight, 1e-10);
  }
}

TEST(BeamSpace, CompressKeepsHeaviestAndOrdersAscending) {
  const Codebook cb = dft44();
  const std::vector<BeamComponent> comps{{2, 1.0}, {9, 4.0}, {14, 2.5}};
  const linalg::FactoredHermitian q = expand_beam_space(comps, cb);
  const std::vector<BeamComponent> top2 = compress_to_beam_space(q, cb, 2);
  ASSERT_EQ(top2.size(), 2u);
  // Heaviest two (beams 9 and 14), returned ascending.
  EXPECT_EQ(top2[0].beam, 9u);
  EXPECT_EQ(top2[1].beam, 14u);
}

TEST(BeamSpace, CompressScratchOverloadMatchesAllocating) {
  const Codebook cb = dft44();
  const std::vector<BeamComponent> comps{{0, 1.0}, {8, 2.0}};
  const linalg::FactoredHermitian q = expand_beam_space(comps, cb);
  std::vector<real> scores(cb.size(), 0.0);
  const auto a = compress_to_beam_space(q, cb, 2, scores);
  const auto b = compress_to_beam_space(q, cb, 2);
  ASSERT_EQ(a.size(), b.size());
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].beam, b[i].beam);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

TEST(BeamSpace, MergeAppliesForgettingOverBeamUnion) {
  const std::vector<BeamComponent> prior{{1, 2.0}, {4, 1.0}};
  const std::vector<BeamComponent> update{{4, 3.0}, {9, 0.5}};
  const std::vector<BeamComponent> out =
      merge_beam_space(prior, 0.5, update, 6);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].beam, 1u);
  EXPECT_NEAR(out[0].weight, 1.0, 1e-15);  // 0.5·2.0
  EXPECT_EQ(out[1].beam, 4u);
  EXPECT_NEAR(out[1].weight, 3.5, 1e-15);  // 0.5·1.0 + 3.0
  EXPECT_EQ(out[2].beam, 9u);
  EXPECT_NEAR(out[2].weight, 0.5, 1e-15);
}

TEST(BeamSpace, MergeTruncatesToHeaviestInAscendingOrder) {
  const std::vector<BeamComponent> prior{{0, 0.1}, {3, 5.0}};
  const std::vector<BeamComponent> update{{7, 4.0}, {12, 0.2}};
  const std::vector<BeamComponent> out =
      merge_beam_space(prior, 1.0, update, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].beam, 3u);  // weight 5.0
  EXPECT_EQ(out[1].beam, 7u);  // weight 4.0
}

TEST(BeamSpace, MergeDropsVanishedComponents) {
  const std::vector<BeamComponent> prior{{2, 1.0}};
  // Full forgetting with an empty update leaves nothing.
  EXPECT_TRUE(merge_beam_space(prior, 0.0, {}, 6).empty());
}

}  // namespace
}  // namespace mmw::estimation
