#include "estimation/matrix_completion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

Matrix random_low_rank(Rng& rng, index_t rows, index_t cols, index_t rank) {
  Matrix a(rows, cols);
  for (index_t k = 0; k < rank; ++k) {
    const Vector u = rng.complex_gaussian_vector(rows);
    const Vector v = rng.complex_gaussian_vector(cols);
    a += Matrix::outer(u, v);
  }
  return a;
}

std::vector<ObservedEntry> sample_entries(const Matrix& m, real fraction,
                                          Rng& rng) {
  const index_t total = m.rows() * m.cols();
  const index_t count =
      std::max<index_t>(1, static_cast<index_t>(fraction * total));
  std::vector<ObservedEntry> out;
  out.reserve(count);
  for (const index_t flat : rng.sample_without_replacement(total, count)) {
    const index_t r = flat / m.cols();
    const index_t c = flat % m.cols();
    out.push_back({r, c, m(r, c)});
  }
  return out;
}

TEST(ShrinkTest, ZeroThresholdIsIdentity) {
  Rng rng(1);
  const Matrix a = rng.complex_gaussian_matrix(5, 4);
  EXPECT_TRUE(linalg::approx_equal(singular_value_shrink(a, 0.0), a,
                                   1e-8 * a.frobenius_norm()));
}

TEST(ShrinkTest, LargeThresholdZeroes) {
  Rng rng(2);
  const Matrix a = rng.complex_gaussian_matrix(4, 4);
  EXPECT_NEAR(singular_value_shrink(a, 1e9).frobenius_norm(), 0.0, 1e-9);
}

TEST(ShrinkTest, ShrinksSingularValuesExactly) {
  Matrix a(3, 3);
  a(0, 0) = cx{5, 0};
  a(1, 1) = cx{2, 0};
  a(2, 2) = cx{0.5, 0};
  const Matrix s = singular_value_shrink(a, 1.0);
  const auto sv = linalg::svd(s).singular_values;
  EXPECT_NEAR(sv[0], 4.0, 1e-8);
  EXPECT_NEAR(sv[1], 1.0, 1e-8);
  EXPECT_NEAR(sv[2], 0.0, 1e-8);
  EXPECT_THROW(singular_value_shrink(a, -1.0), precondition_error);
}

TEST(SvtTest, InputValidation) {
  EXPECT_THROW(complete_svt(4, 4, {}), precondition_error);
  std::vector<ObservedEntry> out_of_range{{4, 0, cx{1, 0}}};
  EXPECT_THROW(complete_svt(4, 4, out_of_range), precondition_error);
  std::vector<ObservedEntry> dup{{0, 0, cx{1, 0}}, {0, 0, cx{2, 0}}};
  EXPECT_THROW(complete_svt(4, 4, dup), precondition_error);
}

TEST(SvtTest, RecoversRankOneFromPartialEntries) {
  Rng rng(3);
  const Matrix m = random_low_rank(rng, 12, 12, 1);
  const auto entries = sample_entries(m, 0.6, rng);
  const auto res = complete_svt(12, 12, entries);
  EXPECT_TRUE(res.converged);
  EXPECT_LT((res.x - m).frobenius_norm() / m.frobenius_norm(), 0.02);
}

TEST(SvtTest, RecoversRankTwoSquare) {
  Rng rng(4);
  const Matrix m = random_low_rank(rng, 20, 20, 2);
  const auto entries = sample_entries(m, 0.6, rng);
  const auto res = complete_svt(20, 20, entries);
  EXPECT_TRUE(res.converged);
  EXPECT_LT((res.x - m).frobenius_norm() / m.frobenius_norm(), 0.02);
}

TEST(SvtTest, RectangularMatrix) {
  Rng rng(5);
  const Matrix m = random_low_rank(rng, 10, 20, 1);
  const auto entries = sample_entries(m, 0.6, rng);
  const auto res = complete_svt(10, 20, entries);
  EXPECT_TRUE(res.converged);
  EXPECT_LT((res.x - m).frobenius_norm() / m.frobenius_norm(), 0.08);
}

TEST(SvtTest, MatchesObservedEntries) {
  Rng rng(6);
  const Matrix m = random_low_rank(rng, 10, 10, 1);
  const auto entries = sample_entries(m, 0.7, rng);
  const auto res = complete_svt(10, 10, entries);
  for (const auto& e : entries)
    EXPECT_LT(std::abs(res.x(e.row, e.col) - e.value),
              0.01 * m.frobenius_norm());
}

TEST(SvtTest, TooFewEntriesDoesNotConverge) {
  // 3 entries of a 12×12 rank-2 matrix is hopeless; the solver must report
  // non-convergence rather than pretend success.
  Rng rng(7);
  const Matrix m = random_low_rank(rng, 12, 12, 2);
  std::vector<ObservedEntry> entries{{0, 0, m(0, 0)},
                                     {5, 7, m(5, 7)},
                                     {11, 2, m(11, 2)}};
  MatrixCompletionOptions opts;
  opts.max_iterations = 30;
  const auto res = complete_svt(12, 12, entries, opts);
  // Either it fails to converge or the recovery error is large.
  if (res.converged) {
    EXPECT_GT((res.x - m).frobenius_norm() / m.frobenius_norm(), 0.3);
  }
}

TEST(SoftImputeTest, RecoversRankOne) {
  Rng rng(8);
  const Matrix m = random_low_rank(rng, 12, 12, 1);
  const auto entries = sample_entries(m, 0.6, rng);
  MatrixCompletionOptions opts;
  opts.max_iterations = 500;
  opts.tolerance = 1e-5;
  const auto res = complete_soft_impute(12, 12, entries, opts);
  EXPECT_LT((res.x - m).frobenius_norm() / m.frobenius_norm(), 0.15);
}

TEST(SoftImputeTest, RobustToNoisyObservations) {
  Rng rng(9);
  const Matrix m = random_low_rank(rng, 12, 12, 1);
  auto entries = sample_entries(m, 0.7, rng);
  for (auto& e : entries) e.value += rng.complex_normal(1e-4);
  MatrixCompletionOptions opts;
  opts.max_iterations = 500;
  opts.tolerance = 1e-5;
  const auto res = complete_soft_impute(12, 12, entries, opts);
  EXPECT_LT((res.x - m).frobenius_norm() / m.frobenius_norm(), 0.2);
}

TEST(SoftImputeTest, FullObservationReproducesMatrix) {
  Rng rng(10);
  const Matrix m = random_low_rank(rng, 6, 6, 2);
  const auto entries = sample_entries(m, 1.0, rng);
  MatrixCompletionOptions opts;
  opts.max_iterations = 400;
  opts.tolerance = 1e-6;
  const auto res = complete_soft_impute(6, 6, entries, opts);
  EXPECT_LT((res.x - m).frobenius_norm() / m.frobenius_norm(), 0.05);
}

TEST(CompletionTest, ReportsIterationCount) {
  Rng rng(11);
  const Matrix m = random_low_rank(rng, 8, 8, 1);
  const auto entries = sample_entries(m, 0.6, rng);
  const auto res = complete_svt(8, 8, entries);
  EXPECT_GT(res.iterations, 0);
}

}  // namespace
}  // namespace mmw::estimation
