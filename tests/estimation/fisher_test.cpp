#include "estimation/fisher.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompositions.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

TEST(FisherTest, SingleMeasurementFormula) {
  EXPECT_DOUBLE_EQ(energy_fisher_information(2.0, 1), 0.25);
  EXPECT_DOUBLE_EQ(energy_fisher_information(2.0, 8), 2.0);
  EXPECT_THROW(energy_fisher_information(0.0, 1), precondition_error);
  EXPECT_THROW(energy_fisher_information(1.0, 0), precondition_error);
}

TEST(FisherTest, ScalarCrbShrinksWithMeasurementsAndFades) {
  const real crb1 = scalar_crb(3.0, 10, 1);
  EXPECT_DOUBLE_EQ(crb1, 9.0 / 10.0);
  EXPECT_DOUBLE_EQ(scalar_crb(3.0, 20, 1), crb1 / 2.0);
  EXPECT_DOUBLE_EQ(scalar_crb(3.0, 10, 4), crb1 / 4.0);
  EXPECT_THROW(scalar_crb(3.0, 0, 1), precondition_error);
}

TEST(FisherTest, EmpiricalVarianceRespectsCrb) {
  // The sample-mean estimator of λ from exponential energies is efficient:
  // its variance hits the CRB λ²/J.
  Rng rng(3);
  const real lambda = 2.5;
  const index_t j_count = 25;
  const int trials = 4000;
  real mean_acc = 0.0, var_acc = 0.0;
  std::vector<real> estimates(trials);
  for (int t = 0; t < trials; ++t) {
    real sum = 0.0;
    for (index_t j = 0; j < j_count; ++j)
      sum += std::norm(rng.complex_normal(lambda));
    estimates[t] = sum / static_cast<real>(j_count);
    mean_acc += estimates[t];
  }
  const real mean = mean_acc / trials;
  for (int t = 0; t < trials; ++t)
    var_acc += (estimates[t] - mean) * (estimates[t] - mean);
  const real var = var_acc / trials;
  const real crb = scalar_crb(lambda, j_count, 1);
  EXPECT_NEAR(var / crb, 1.0, 0.12);  // efficient estimator sits at the CRB
  EXPECT_GT(var, 0.8 * crb);          // and never (statistically) below it
}

TEST(FisherTest, LinearModelMatrixShapeAndValues) {
  // Two parameters, three measurements with hand-computable entries.
  const real sens[] = {1.0, 0.0,   // λ_1 sensitivities
                       0.0, 2.0,   // λ_2
                       1.0, 1.0};  // λ_3
  const real lambdas[] = {1.0, 2.0, 1.0};
  const Matrix fim = linear_model_fisher_matrix(sens, 2, lambdas, 1);
  // (0,0): 1/1 + 0 + 1/1 = 2; (1,1): 4/4 + 1/1 = 2; (0,1): 1·1/1 = 1.
  EXPECT_NEAR(fim(0, 0).real(), 2.0, 1e-12);
  EXPECT_NEAR(fim(1, 1).real(), 2.0, 1e-12);
  EXPECT_NEAR(fim(0, 1).real(), 1.0, 1e-12);
  EXPECT_TRUE(fim.is_hermitian(1e-12));
}

TEST(FisherTest, LinearModelValidation) {
  const real sens[] = {1.0, 0.0};
  const real lambdas[] = {1.0, 2.0};
  EXPECT_THROW(linear_model_fisher_matrix(sens, 2, lambdas, 1),
               precondition_error);  // shape mismatch (needs 4 sens)
  EXPECT_THROW(
      linear_model_fisher_matrix(std::span<const real>{}, 1, {}, 1),
      precondition_error);
}

TEST(FisherTest, FisherMatrixIsPsdAndInvertibleWhenIdentified) {
  Rng rng(5);
  const index_t params = 4, j_count = 12;
  std::vector<real> sens(j_count * params), lambdas(j_count);
  for (index_t j = 0; j < j_count; ++j) {
    real lam = 0.1;
    for (index_t t = 0; t < params; ++t) {
      sens[j * params + t] = rng.uniform(0.0, 1.0);
      lam += sens[j * params + t];
    }
    lambdas[j] = lam;
  }
  const Matrix fim = linear_model_fisher_matrix(sens, params, lambdas, 2);
  // Invertible (parameters identified with J > T generic sensitivities).
  EXPECT_FALSE(linalg::lu_decompose(fim).singular);
}

TEST(FisherTest, ProbeScoreFavorsLowPredictedEnergy) {
  // Per the K/λ² law, a beam predicted near the noise floor carries more
  // information about its own quotient than one already known to be hot.
  Rng rng(6);
  const Vector hot = rng.random_unit_vector(8);
  const Matrix q_hat = Matrix::outer(hot, hot) * cx{50.0, 0.0};
  Vector cold = rng.random_unit_vector(8);
  cold -= linalg::dot(hot, cold) * hot;  // orthogonal to the hot direction
  cold = cold.normalized();
  const real gamma = 10.0;
  EXPECT_GT(probe_information_score(q_hat, cold, gamma),
            probe_information_score(q_hat, hot, gamma));
  EXPECT_THROW(probe_information_score(q_hat, hot, 0.0),
               precondition_error);
}

}  // namespace
}  // namespace mmw::estimation
