file(REMOVE_RECURSE
  "libmmw_core.a"
)
