# Empty dependencies file for mmw_core.
# This may be replaced when dependencies are built.
