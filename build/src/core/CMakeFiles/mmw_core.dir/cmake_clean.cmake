file(REMOVE_RECURSE
  "CMakeFiles/mmw_core.dir/oracle.cpp.o"
  "CMakeFiles/mmw_core.dir/oracle.cpp.o.d"
  "CMakeFiles/mmw_core.dir/standard_sweep.cpp.o"
  "CMakeFiles/mmw_core.dir/standard_sweep.cpp.o.d"
  "CMakeFiles/mmw_core.dir/strategy.cpp.o"
  "CMakeFiles/mmw_core.dir/strategy.cpp.o.d"
  "libmmw_core.a"
  "libmmw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
