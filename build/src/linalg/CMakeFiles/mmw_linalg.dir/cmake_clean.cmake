file(REMOVE_RECURSE
  "CMakeFiles/mmw_linalg.dir/decompositions.cpp.o"
  "CMakeFiles/mmw_linalg.dir/decompositions.cpp.o.d"
  "CMakeFiles/mmw_linalg.dir/eig.cpp.o"
  "CMakeFiles/mmw_linalg.dir/eig.cpp.o.d"
  "CMakeFiles/mmw_linalg.dir/eig_tridiagonal.cpp.o"
  "CMakeFiles/mmw_linalg.dir/eig_tridiagonal.cpp.o.d"
  "CMakeFiles/mmw_linalg.dir/functions.cpp.o"
  "CMakeFiles/mmw_linalg.dir/functions.cpp.o.d"
  "CMakeFiles/mmw_linalg.dir/matrix.cpp.o"
  "CMakeFiles/mmw_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/mmw_linalg.dir/vector.cpp.o"
  "CMakeFiles/mmw_linalg.dir/vector.cpp.o.d"
  "libmmw_linalg.a"
  "libmmw_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
