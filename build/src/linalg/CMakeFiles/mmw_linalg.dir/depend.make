# Empty dependencies file for mmw_linalg.
# This may be replaced when dependencies are built.
