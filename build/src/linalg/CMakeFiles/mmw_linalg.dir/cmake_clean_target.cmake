file(REMOVE_RECURSE
  "libmmw_linalg.a"
)
