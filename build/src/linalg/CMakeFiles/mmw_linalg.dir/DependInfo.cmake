
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/decompositions.cpp" "src/linalg/CMakeFiles/mmw_linalg.dir/decompositions.cpp.o" "gcc" "src/linalg/CMakeFiles/mmw_linalg.dir/decompositions.cpp.o.d"
  "/root/repo/src/linalg/eig.cpp" "src/linalg/CMakeFiles/mmw_linalg.dir/eig.cpp.o" "gcc" "src/linalg/CMakeFiles/mmw_linalg.dir/eig.cpp.o.d"
  "/root/repo/src/linalg/eig_tridiagonal.cpp" "src/linalg/CMakeFiles/mmw_linalg.dir/eig_tridiagonal.cpp.o" "gcc" "src/linalg/CMakeFiles/mmw_linalg.dir/eig_tridiagonal.cpp.o.d"
  "/root/repo/src/linalg/functions.cpp" "src/linalg/CMakeFiles/mmw_linalg.dir/functions.cpp.o" "gcc" "src/linalg/CMakeFiles/mmw_linalg.dir/functions.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/mmw_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/mmw_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/vector.cpp" "src/linalg/CMakeFiles/mmw_linalg.dir/vector.cpp.o" "gcc" "src/linalg/CMakeFiles/mmw_linalg.dir/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
