file(REMOVE_RECURSE
  "libmmw_mac.a"
)
