file(REMOVE_RECURSE
  "CMakeFiles/mmw_mac.dir/session.cpp.o"
  "CMakeFiles/mmw_mac.dir/session.cpp.o.d"
  "CMakeFiles/mmw_mac.dir/timing.cpp.o"
  "CMakeFiles/mmw_mac.dir/timing.cpp.o.d"
  "libmmw_mac.a"
  "libmmw_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
