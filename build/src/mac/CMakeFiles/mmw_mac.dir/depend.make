# Empty dependencies file for mmw_mac.
# This may be replaced when dependencies are built.
