# Empty dependencies file for mmw_randgen.
# This may be replaced when dependencies are built.
