file(REMOVE_RECURSE
  "CMakeFiles/mmw_randgen.dir/rng.cpp.o"
  "CMakeFiles/mmw_randgen.dir/rng.cpp.o.d"
  "libmmw_randgen.a"
  "libmmw_randgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_randgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
