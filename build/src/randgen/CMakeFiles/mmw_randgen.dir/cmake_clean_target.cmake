file(REMOVE_RECURSE
  "libmmw_randgen.a"
)
