file(REMOVE_RECURSE
  "libmmw_sim.a"
)
