# Empty dependencies file for mmw_sim.
# This may be replaced when dependencies are built.
