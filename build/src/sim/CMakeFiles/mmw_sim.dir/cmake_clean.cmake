file(REMOVE_RECURSE
  "CMakeFiles/mmw_sim.dir/evaluation.cpp.o"
  "CMakeFiles/mmw_sim.dir/evaluation.cpp.o.d"
  "CMakeFiles/mmw_sim.dir/experiments.cpp.o"
  "CMakeFiles/mmw_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/mmw_sim.dir/scenario.cpp.o"
  "CMakeFiles/mmw_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/mmw_sim.dir/stats.cpp.o"
  "CMakeFiles/mmw_sim.dir/stats.cpp.o.d"
  "libmmw_sim.a"
  "libmmw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
