file(REMOVE_RECURSE
  "CMakeFiles/mmw_estimation.dir/compressed_sensing.cpp.o"
  "CMakeFiles/mmw_estimation.dir/compressed_sensing.cpp.o.d"
  "CMakeFiles/mmw_estimation.dir/covariance_ml.cpp.o"
  "CMakeFiles/mmw_estimation.dir/covariance_ml.cpp.o.d"
  "CMakeFiles/mmw_estimation.dir/fisher.cpp.o"
  "CMakeFiles/mmw_estimation.dir/fisher.cpp.o.d"
  "CMakeFiles/mmw_estimation.dir/matrix_completion.cpp.o"
  "CMakeFiles/mmw_estimation.dir/matrix_completion.cpp.o.d"
  "CMakeFiles/mmw_estimation.dir/measurement_model.cpp.o"
  "CMakeFiles/mmw_estimation.dir/measurement_model.cpp.o.d"
  "libmmw_estimation.a"
  "libmmw_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
