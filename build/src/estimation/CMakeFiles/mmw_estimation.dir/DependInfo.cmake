
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimation/compressed_sensing.cpp" "src/estimation/CMakeFiles/mmw_estimation.dir/compressed_sensing.cpp.o" "gcc" "src/estimation/CMakeFiles/mmw_estimation.dir/compressed_sensing.cpp.o.d"
  "/root/repo/src/estimation/covariance_ml.cpp" "src/estimation/CMakeFiles/mmw_estimation.dir/covariance_ml.cpp.o" "gcc" "src/estimation/CMakeFiles/mmw_estimation.dir/covariance_ml.cpp.o.d"
  "/root/repo/src/estimation/fisher.cpp" "src/estimation/CMakeFiles/mmw_estimation.dir/fisher.cpp.o" "gcc" "src/estimation/CMakeFiles/mmw_estimation.dir/fisher.cpp.o.d"
  "/root/repo/src/estimation/matrix_completion.cpp" "src/estimation/CMakeFiles/mmw_estimation.dir/matrix_completion.cpp.o" "gcc" "src/estimation/CMakeFiles/mmw_estimation.dir/matrix_completion.cpp.o.d"
  "/root/repo/src/estimation/measurement_model.cpp" "src/estimation/CMakeFiles/mmw_estimation.dir/measurement_model.cpp.o" "gcc" "src/estimation/CMakeFiles/mmw_estimation.dir/measurement_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/mmw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmw_antenna.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
