# Empty dependencies file for mmw_estimation.
# This may be replaced when dependencies are built.
