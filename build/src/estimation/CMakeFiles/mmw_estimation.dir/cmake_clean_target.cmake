file(REMOVE_RECURSE
  "libmmw_estimation.a"
)
