file(REMOVE_RECURSE
  "libmmw_phy.a"
)
