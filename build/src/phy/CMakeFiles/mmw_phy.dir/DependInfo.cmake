
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/capacity.cpp" "src/phy/CMakeFiles/mmw_phy.dir/capacity.cpp.o" "gcc" "src/phy/CMakeFiles/mmw_phy.dir/capacity.cpp.o.d"
  "/root/repo/src/phy/hybrid.cpp" "src/phy/CMakeFiles/mmw_phy.dir/hybrid.cpp.o" "gcc" "src/phy/CMakeFiles/mmw_phy.dir/hybrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/mmw_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
