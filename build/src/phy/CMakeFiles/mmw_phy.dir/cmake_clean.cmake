file(REMOVE_RECURSE
  "CMakeFiles/mmw_phy.dir/capacity.cpp.o"
  "CMakeFiles/mmw_phy.dir/capacity.cpp.o.d"
  "CMakeFiles/mmw_phy.dir/hybrid.cpp.o"
  "CMakeFiles/mmw_phy.dir/hybrid.cpp.o.d"
  "libmmw_phy.a"
  "libmmw_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
