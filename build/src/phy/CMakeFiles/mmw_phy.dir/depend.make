# Empty dependencies file for mmw_phy.
# This may be replaced when dependencies are built.
