# Empty dependencies file for mmw_channel.
# This may be replaced when dependencies are built.
