file(REMOVE_RECURSE
  "CMakeFiles/mmw_channel.dir/link.cpp.o"
  "CMakeFiles/mmw_channel.dir/link.cpp.o.d"
  "CMakeFiles/mmw_channel.dir/models.cpp.o"
  "CMakeFiles/mmw_channel.dir/models.cpp.o.d"
  "CMakeFiles/mmw_channel.dir/pathloss.cpp.o"
  "CMakeFiles/mmw_channel.dir/pathloss.cpp.o.d"
  "CMakeFiles/mmw_channel.dir/temporal.cpp.o"
  "CMakeFiles/mmw_channel.dir/temporal.cpp.o.d"
  "CMakeFiles/mmw_channel.dir/wideband.cpp.o"
  "CMakeFiles/mmw_channel.dir/wideband.cpp.o.d"
  "libmmw_channel.a"
  "libmmw_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
