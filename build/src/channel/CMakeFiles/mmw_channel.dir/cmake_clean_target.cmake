file(REMOVE_RECURSE
  "libmmw_channel.a"
)
