
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/link.cpp" "src/channel/CMakeFiles/mmw_channel.dir/link.cpp.o" "gcc" "src/channel/CMakeFiles/mmw_channel.dir/link.cpp.o.d"
  "/root/repo/src/channel/models.cpp" "src/channel/CMakeFiles/mmw_channel.dir/models.cpp.o" "gcc" "src/channel/CMakeFiles/mmw_channel.dir/models.cpp.o.d"
  "/root/repo/src/channel/pathloss.cpp" "src/channel/CMakeFiles/mmw_channel.dir/pathloss.cpp.o" "gcc" "src/channel/CMakeFiles/mmw_channel.dir/pathloss.cpp.o.d"
  "/root/repo/src/channel/temporal.cpp" "src/channel/CMakeFiles/mmw_channel.dir/temporal.cpp.o" "gcc" "src/channel/CMakeFiles/mmw_channel.dir/temporal.cpp.o.d"
  "/root/repo/src/channel/wideband.cpp" "src/channel/CMakeFiles/mmw_channel.dir/wideband.cpp.o" "gcc" "src/channel/CMakeFiles/mmw_channel.dir/wideband.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/mmw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmw_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/randgen/CMakeFiles/mmw_randgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
