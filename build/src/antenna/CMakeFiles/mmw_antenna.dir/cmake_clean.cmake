file(REMOVE_RECURSE
  "CMakeFiles/mmw_antenna.dir/codebook.cpp.o"
  "CMakeFiles/mmw_antenna.dir/codebook.cpp.o.d"
  "CMakeFiles/mmw_antenna.dir/geometry.cpp.o"
  "CMakeFiles/mmw_antenna.dir/geometry.cpp.o.d"
  "CMakeFiles/mmw_antenna.dir/pattern.cpp.o"
  "CMakeFiles/mmw_antenna.dir/pattern.cpp.o.d"
  "CMakeFiles/mmw_antenna.dir/steering.cpp.o"
  "CMakeFiles/mmw_antenna.dir/steering.cpp.o.d"
  "libmmw_antenna.a"
  "libmmw_antenna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmw_antenna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
