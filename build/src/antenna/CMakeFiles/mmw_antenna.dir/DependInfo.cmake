
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/antenna/codebook.cpp" "src/antenna/CMakeFiles/mmw_antenna.dir/codebook.cpp.o" "gcc" "src/antenna/CMakeFiles/mmw_antenna.dir/codebook.cpp.o.d"
  "/root/repo/src/antenna/geometry.cpp" "src/antenna/CMakeFiles/mmw_antenna.dir/geometry.cpp.o" "gcc" "src/antenna/CMakeFiles/mmw_antenna.dir/geometry.cpp.o.d"
  "/root/repo/src/antenna/pattern.cpp" "src/antenna/CMakeFiles/mmw_antenna.dir/pattern.cpp.o" "gcc" "src/antenna/CMakeFiles/mmw_antenna.dir/pattern.cpp.o.d"
  "/root/repo/src/antenna/steering.cpp" "src/antenna/CMakeFiles/mmw_antenna.dir/steering.cpp.o" "gcc" "src/antenna/CMakeFiles/mmw_antenna.dir/steering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/mmw_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
