file(REMOVE_RECURSE
  "libmmw_antenna.a"
)
