# Empty compiler generated dependencies file for mmw_antenna.
# This may be replaced when dependencies are built.
