# Empty compiler generated dependencies file for ext_protocol_overhead.
# This may be replaced when dependencies are built.
