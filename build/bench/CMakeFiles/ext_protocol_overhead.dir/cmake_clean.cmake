file(REMOVE_RECURSE
  "CMakeFiles/ext_protocol_overhead.dir/ext_protocol_overhead.cpp.o"
  "CMakeFiles/ext_protocol_overhead.dir/ext_protocol_overhead.cpp.o.d"
  "ext_protocol_overhead"
  "ext_protocol_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_protocol_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
