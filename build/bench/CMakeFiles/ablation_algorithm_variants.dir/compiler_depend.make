# Empty compiler generated dependencies file for ablation_algorithm_variants.
# This may be replaced when dependencies are built.
