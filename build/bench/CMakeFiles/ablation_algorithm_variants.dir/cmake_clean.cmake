file(REMOVE_RECURSE
  "CMakeFiles/ablation_algorithm_variants.dir/ablation_algorithm_variants.cpp.o"
  "CMakeFiles/ablation_algorithm_variants.dir/ablation_algorithm_variants.cpp.o.d"
  "ablation_algorithm_variants"
  "ablation_algorithm_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_algorithm_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
