# Empty dependencies file for ext_strategies_compare.
# This may be replaced when dependencies are built.
