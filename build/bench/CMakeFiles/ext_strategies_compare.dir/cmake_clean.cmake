file(REMOVE_RECURSE
  "CMakeFiles/ext_strategies_compare.dir/ext_strategies_compare.cpp.o"
  "CMakeFiles/ext_strategies_compare.dir/ext_strategies_compare.cpp.o.d"
  "ext_strategies_compare"
  "ext_strategies_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_strategies_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
