# Empty compiler generated dependencies file for fig5_search_effectiveness_singlepath.
# This may be replaced when dependencies are built.
