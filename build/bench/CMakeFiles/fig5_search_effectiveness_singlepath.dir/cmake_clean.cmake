file(REMOVE_RECURSE
  "CMakeFiles/fig5_search_effectiveness_singlepath.dir/fig5_search_effectiveness_singlepath.cpp.o"
  "CMakeFiles/fig5_search_effectiveness_singlepath.dir/fig5_search_effectiveness_singlepath.cpp.o.d"
  "fig5_search_effectiveness_singlepath"
  "fig5_search_effectiveness_singlepath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_search_effectiveness_singlepath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
