# Empty dependencies file for ablation_codebook.
# This may be replaced when dependencies are built.
