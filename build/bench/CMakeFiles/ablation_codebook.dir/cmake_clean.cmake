file(REMOVE_RECURSE
  "CMakeFiles/ablation_codebook.dir/ablation_codebook.cpp.o"
  "CMakeFiles/ablation_codebook.dir/ablation_codebook.cpp.o.d"
  "ablation_codebook"
  "ablation_codebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
