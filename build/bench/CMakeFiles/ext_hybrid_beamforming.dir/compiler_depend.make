# Empty compiler generated dependencies file for ext_hybrid_beamforming.
# This may be replaced when dependencies are built.
