file(REMOVE_RECURSE
  "CMakeFiles/ext_hybrid_beamforming.dir/ext_hybrid_beamforming.cpp.o"
  "CMakeFiles/ext_hybrid_beamforming.dir/ext_hybrid_beamforming.cpp.o.d"
  "ext_hybrid_beamforming"
  "ext_hybrid_beamforming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hybrid_beamforming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
