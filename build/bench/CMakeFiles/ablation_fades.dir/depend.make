# Empty dependencies file for ablation_fades.
# This may be replaced when dependencies are built.
