file(REMOVE_RECURSE
  "CMakeFiles/ablation_fades.dir/ablation_fades.cpp.o"
  "CMakeFiles/ablation_fades.dir/ablation_fades.cpp.o.d"
  "ablation_fades"
  "ablation_fades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
