# Empty compiler generated dependencies file for ext_wideband_selectivity.
# This may be replaced when dependencies are built.
