file(REMOVE_RECURSE
  "CMakeFiles/ext_wideband_selectivity.dir/ext_wideband_selectivity.cpp.o"
  "CMakeFiles/ext_wideband_selectivity.dir/ext_wideband_selectivity.cpp.o.d"
  "ext_wideband_selectivity"
  "ext_wideband_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_wideband_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
