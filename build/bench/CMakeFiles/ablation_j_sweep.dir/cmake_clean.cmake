file(REMOVE_RECURSE
  "CMakeFiles/ablation_j_sweep.dir/ablation_j_sweep.cpp.o"
  "CMakeFiles/ablation_j_sweep.dir/ablation_j_sweep.cpp.o.d"
  "ablation_j_sweep"
  "ablation_j_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_j_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
