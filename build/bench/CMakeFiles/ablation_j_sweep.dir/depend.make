# Empty dependencies file for ablation_j_sweep.
# This may be replaced when dependencies are built.
