# Empty dependencies file for ablation_blockage.
# This may be replaced when dependencies are built.
