file(REMOVE_RECURSE
  "CMakeFiles/ablation_blockage.dir/ablation_blockage.cpp.o"
  "CMakeFiles/ablation_blockage.dir/ablation_blockage.cpp.o.d"
  "ablation_blockage"
  "ablation_blockage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blockage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
