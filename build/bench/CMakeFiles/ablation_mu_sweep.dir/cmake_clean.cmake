file(REMOVE_RECURSE
  "CMakeFiles/ablation_mu_sweep.dir/ablation_mu_sweep.cpp.o"
  "CMakeFiles/ablation_mu_sweep.dir/ablation_mu_sweep.cpp.o.d"
  "ablation_mu_sweep"
  "ablation_mu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
