# Empty dependencies file for ablation_mu_sweep.
# This may be replaced when dependencies are built.
