# Empty dependencies file for ablation_phase_quantization.
# This may be replaced when dependencies are built.
