file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase_quantization.dir/ablation_phase_quantization.cpp.o"
  "CMakeFiles/ablation_phase_quantization.dir/ablation_phase_quantization.cpp.o.d"
  "ablation_phase_quantization"
  "ablation_phase_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
