# Empty dependencies file for ablation_estimator_compare.
# This may be replaced when dependencies are built.
