file(REMOVE_RECURSE
  "CMakeFiles/ablation_estimator_compare.dir/ablation_estimator_compare.cpp.o"
  "CMakeFiles/ablation_estimator_compare.dir/ablation_estimator_compare.cpp.o.d"
  "ablation_estimator_compare"
  "ablation_estimator_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimator_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
