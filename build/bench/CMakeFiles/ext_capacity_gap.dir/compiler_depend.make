# Empty compiler generated dependencies file for ext_capacity_gap.
# This may be replaced when dependencies are built.
