file(REMOVE_RECURSE
  "CMakeFiles/ext_capacity_gap.dir/ext_capacity_gap.cpp.o"
  "CMakeFiles/ext_capacity_gap.dir/ext_capacity_gap.cpp.o.d"
  "ext_capacity_gap"
  "ext_capacity_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_capacity_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
