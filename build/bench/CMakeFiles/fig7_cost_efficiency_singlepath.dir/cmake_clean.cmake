file(REMOVE_RECURSE
  "CMakeFiles/fig7_cost_efficiency_singlepath.dir/fig7_cost_efficiency_singlepath.cpp.o"
  "CMakeFiles/fig7_cost_efficiency_singlepath.dir/fig7_cost_efficiency_singlepath.cpp.o.d"
  "fig7_cost_efficiency_singlepath"
  "fig7_cost_efficiency_singlepath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cost_efficiency_singlepath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
