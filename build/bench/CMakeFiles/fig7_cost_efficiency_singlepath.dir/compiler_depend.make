# Empty compiler generated dependencies file for fig7_cost_efficiency_singlepath.
# This may be replaced when dependencies are built.
