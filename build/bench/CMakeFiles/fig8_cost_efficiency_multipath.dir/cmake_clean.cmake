file(REMOVE_RECURSE
  "CMakeFiles/fig8_cost_efficiency_multipath.dir/fig8_cost_efficiency_multipath.cpp.o"
  "CMakeFiles/fig8_cost_efficiency_multipath.dir/fig8_cost_efficiency_multipath.cpp.o.d"
  "fig8_cost_efficiency_multipath"
  "fig8_cost_efficiency_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cost_efficiency_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
