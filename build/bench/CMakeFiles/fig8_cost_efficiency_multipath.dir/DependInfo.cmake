
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_cost_efficiency_multipath.cpp" "bench/CMakeFiles/fig8_cost_efficiency_multipath.dir/fig8_cost_efficiency_multipath.cpp.o" "gcc" "bench/CMakeFiles/fig8_cost_efficiency_multipath.dir/fig8_cost_efficiency_multipath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mmw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mmw_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mmw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/mmw_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/mmw_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/mmw_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmw_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/randgen/CMakeFiles/mmw_randgen.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mmw_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
