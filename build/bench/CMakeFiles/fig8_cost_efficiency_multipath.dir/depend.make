# Empty dependencies file for fig8_cost_efficiency_multipath.
# This may be replaced when dependencies are built.
