# Empty compiler generated dependencies file for ablation_rank_sweep.
# This may be replaced when dependencies are built.
