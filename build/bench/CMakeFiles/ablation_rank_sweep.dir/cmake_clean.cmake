file(REMOVE_RECURSE
  "CMakeFiles/ablation_rank_sweep.dir/ablation_rank_sweep.cpp.o"
  "CMakeFiles/ablation_rank_sweep.dir/ablation_rank_sweep.cpp.o.d"
  "ablation_rank_sweep"
  "ablation_rank_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rank_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
