# Empty dependencies file for fig6_search_effectiveness_multipath.
# This may be replaced when dependencies are built.
