file(REMOVE_RECURSE
  "CMakeFiles/fig6_search_effectiveness_multipath.dir/fig6_search_effectiveness_multipath.cpp.o"
  "CMakeFiles/fig6_search_effectiveness_multipath.dir/fig6_search_effectiveness_multipath.cpp.o.d"
  "fig6_search_effectiveness_multipath"
  "fig6_search_effectiveness_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_search_effectiveness_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
