# Empty dependencies file for ext_bidirectional.
# This may be replaced when dependencies are built.
