file(REMOVE_RECURSE
  "CMakeFiles/ext_bidirectional.dir/ext_bidirectional.cpp.o"
  "CMakeFiles/ext_bidirectional.dir/ext_bidirectional.cpp.o.d"
  "ext_bidirectional"
  "ext_bidirectional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
