# Empty compiler generated dependencies file for alignment_cli.
# This may be replaced when dependencies are built.
