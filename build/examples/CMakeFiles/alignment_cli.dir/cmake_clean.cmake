file(REMOVE_RECURSE
  "CMakeFiles/alignment_cli.dir/alignment_cli.cpp.o"
  "CMakeFiles/alignment_cli.dir/alignment_cli.cpp.o.d"
  "alignment_cli"
  "alignment_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alignment_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
