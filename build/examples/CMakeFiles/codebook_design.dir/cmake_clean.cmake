file(REMOVE_RECURSE
  "CMakeFiles/codebook_design.dir/codebook_design.cpp.o"
  "CMakeFiles/codebook_design.dir/codebook_design.cpp.o.d"
  "codebook_design"
  "codebook_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codebook_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
