# Empty compiler generated dependencies file for codebook_design.
# This may be replaced when dependencies are built.
