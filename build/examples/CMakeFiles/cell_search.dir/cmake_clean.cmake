file(REMOVE_RECURSE
  "CMakeFiles/cell_search.dir/cell_search.cpp.o"
  "CMakeFiles/cell_search.dir/cell_search.cpp.o.d"
  "cell_search"
  "cell_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
