# Empty dependencies file for cell_search.
# This may be replaced when dependencies are built.
