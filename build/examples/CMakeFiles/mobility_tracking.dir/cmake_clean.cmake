file(REMOVE_RECURSE
  "CMakeFiles/mobility_tracking.dir/mobility_tracking.cpp.o"
  "CMakeFiles/mobility_tracking.dir/mobility_tracking.cpp.o.d"
  "mobility_tracking"
  "mobility_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
