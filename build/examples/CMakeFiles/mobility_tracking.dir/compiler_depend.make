# Empty compiler generated dependencies file for mobility_tracking.
# This may be replaced when dependencies are built.
