file(REMOVE_RECURSE
  "CMakeFiles/sparse_channel_estimation.dir/sparse_channel_estimation.cpp.o"
  "CMakeFiles/sparse_channel_estimation.dir/sparse_channel_estimation.cpp.o.d"
  "sparse_channel_estimation"
  "sparse_channel_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_channel_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
