# Empty dependencies file for sparse_channel_estimation.
# This may be replaced when dependencies are built.
