# Empty compiler generated dependencies file for multi_cell.
# This may be replaced when dependencies are built.
