file(REMOVE_RECURSE
  "CMakeFiles/multi_cell.dir/multi_cell.cpp.o"
  "CMakeFiles/multi_cell.dir/multi_cell.cpp.o.d"
  "multi_cell"
  "multi_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
