# Empty compiler generated dependencies file for initial_access.
# This may be replaced when dependencies are built.
