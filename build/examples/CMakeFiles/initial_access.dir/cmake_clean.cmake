file(REMOVE_RECURSE
  "CMakeFiles/initial_access.dir/initial_access.cpp.o"
  "CMakeFiles/initial_access.dir/initial_access.cpp.o.d"
  "initial_access"
  "initial_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initial_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
