# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/randgen_test[1]_include.cmake")
include("/root/repo/build/tests/antenna_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/estimation_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
