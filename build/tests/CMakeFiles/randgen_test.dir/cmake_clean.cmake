file(REMOVE_RECURSE
  "CMakeFiles/randgen_test.dir/randgen/rng_test.cpp.o"
  "CMakeFiles/randgen_test.dir/randgen/rng_test.cpp.o.d"
  "randgen_test"
  "randgen_test.pdb"
  "randgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
