# Empty dependencies file for randgen_test.
# This may be replaced when dependencies are built.
