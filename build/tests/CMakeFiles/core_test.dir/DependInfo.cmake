
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/oracle_test.cpp" "tests/CMakeFiles/core_test.dir/core/oracle_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/oracle_test.cpp.o.d"
  "/root/repo/tests/core/standard_sweep_test.cpp" "tests/CMakeFiles/core_test.dir/core/standard_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/standard_sweep_test.cpp.o.d"
  "/root/repo/tests/core/strategy_test.cpp" "tests/CMakeFiles/core_test.dir/core/strategy_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/strategy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/mmw_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/mmw_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/mmw_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmw_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/randgen/CMakeFiles/mmw_randgen.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mmw_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
