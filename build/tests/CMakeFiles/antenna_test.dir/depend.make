# Empty dependencies file for antenna_test.
# This may be replaced when dependencies are built.
