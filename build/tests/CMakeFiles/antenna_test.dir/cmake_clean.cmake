file(REMOVE_RECURSE
  "CMakeFiles/antenna_test.dir/antenna/codebook_test.cpp.o"
  "CMakeFiles/antenna_test.dir/antenna/codebook_test.cpp.o.d"
  "CMakeFiles/antenna_test.dir/antenna/geometry_test.cpp.o"
  "CMakeFiles/antenna_test.dir/antenna/geometry_test.cpp.o.d"
  "CMakeFiles/antenna_test.dir/antenna/pattern_test.cpp.o"
  "CMakeFiles/antenna_test.dir/antenna/pattern_test.cpp.o.d"
  "CMakeFiles/antenna_test.dir/antenna/steering_test.cpp.o"
  "CMakeFiles/antenna_test.dir/antenna/steering_test.cpp.o.d"
  "antenna_test"
  "antenna_test.pdb"
  "antenna_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antenna_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
