file(REMOVE_RECURSE
  "CMakeFiles/estimation_test.dir/estimation/compressed_sensing_test.cpp.o"
  "CMakeFiles/estimation_test.dir/estimation/compressed_sensing_test.cpp.o.d"
  "CMakeFiles/estimation_test.dir/estimation/covariance_ml_test.cpp.o"
  "CMakeFiles/estimation_test.dir/estimation/covariance_ml_test.cpp.o.d"
  "CMakeFiles/estimation_test.dir/estimation/fisher_test.cpp.o"
  "CMakeFiles/estimation_test.dir/estimation/fisher_test.cpp.o.d"
  "CMakeFiles/estimation_test.dir/estimation/matrix_completion_test.cpp.o"
  "CMakeFiles/estimation_test.dir/estimation/matrix_completion_test.cpp.o.d"
  "estimation_test"
  "estimation_test.pdb"
  "estimation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
