file(REMOVE_RECURSE
  "CMakeFiles/property_test.dir/property/channel_property_test.cpp.o"
  "CMakeFiles/property_test.dir/property/channel_property_test.cpp.o.d"
  "CMakeFiles/property_test.dir/property/estimation_property_test.cpp.o"
  "CMakeFiles/property_test.dir/property/estimation_property_test.cpp.o.d"
  "CMakeFiles/property_test.dir/property/linalg_property_test.cpp.o"
  "CMakeFiles/property_test.dir/property/linalg_property_test.cpp.o.d"
  "CMakeFiles/property_test.dir/property/strategy_property_test.cpp.o"
  "CMakeFiles/property_test.dir/property/strategy_property_test.cpp.o.d"
  "property_test"
  "property_test.pdb"
  "property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
