
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/decompositions_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/decompositions_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/decompositions_test.cpp.o.d"
  "/root/repo/tests/linalg/eig_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/eig_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/eig_test.cpp.o.d"
  "/root/repo/tests/linalg/functions_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/functions_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/functions_test.cpp.o.d"
  "/root/repo/tests/linalg/matrix_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/matrix_test.cpp.o.d"
  "/root/repo/tests/linalg/vector_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/vector_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/vector_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/mmw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/randgen/CMakeFiles/mmw_randgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
